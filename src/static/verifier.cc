#include "static/verifier.hh"

#include <map>
#include <sstream>

#include "dalvik/method.hh"
#include "static/cfg.hh"
#include "static/control_dep.hh"
#include "static/dominators.hh"

namespace pift::static_analysis
{

using dalvik::Bc;

namespace
{

const char *
checkName(Check check)
{
    switch (check) {
      case Check::BadOpcode: return "bad-opcode";
      case Check::TruncatedInst: return "truncated-instruction";
      case Check::BranchOutOfRange: return "branch-out-of-range";
      case Check::BranchMidInstruction: return "branch-mid-instruction";
      case Check::RegisterOutOfFrame: return "register-out-of-frame";
      case Check::InvokeRangeOutOfFrame:
        return "invoke-range-out-of-frame";
      case Check::FallOffEnd: return "fall-off-end";
      case Check::BadCatchOffset: return "bad-catch-offset";
      case Check::BadPoolIndex: return "bad-pool-index";
      case Check::BadClassIndex: return "bad-class-index";
      case Check::BadStaticIndex: return "bad-static-index";
      case Check::BadMethodIndex: return "bad-method-index";
      case Check::UnreachableCode: return "unreachable-code";
      case Check::UseBeforeDef: return "use-before-def";
      case Check::DegenerateBranch: return "degenerate-branch";
    }
    return "?";
}

/** Must-defined register set, with a "not yet merged" bottom. */
struct DefinedState
{
    bool valid = false;
    std::vector<bool> defined;
};

/** Intersection join; returns true when @p into shrank. */
bool
mergeDefined(DefinedState &into, const DefinedState &in)
{
    if (!in.valid)
        return false;
    if (!into.valid) {
        into = in;
        return true;
    }
    bool changed = false;
    for (size_t r = 0; r < into.defined.size(); ++r)
        if (into.defined[r] && !in.defined[r]) {
            into.defined[r] = false;
            changed = true;
        }
    return changed;
}

void
transferDefined(DefinedState &s, const DecodedInst &inst)
{
    for (uint16_t r : inst.defs)
        if (r < s.defined.size())
            s.defined[r] = true;
}

void
emit(VerifyResult &result, Severity severity, Check check, size_t unit,
     std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.check = check;
    d.unit = unit;
    d.message = std::move(message);
    result.diagnostics.push_back(std::move(d));
}

void
checkIndices(VerifyResult &result, const DecodedInst &inst,
             const dalvik::Dex &dex)
{
    switch (inst.bc) {
      case Bc::ConstString:
        if (inst.index >= dex.stringPool().size())
            emit(result, Severity::Error, Check::BadPoolIndex, inst.unit,
                 "string pool index " + std::to_string(inst.index) +
                     " out of bounds");
        break;
      case Bc::NewInstance:
      case Bc::NewArray:
      case Bc::CheckCast:
        if (inst.index >= dex.classCount())
            emit(result, Severity::Error, Check::BadClassIndex,
                 inst.unit,
                 "class index " + std::to_string(inst.index) +
                     " out of bounds");
        break;
      case Bc::Sget:
      case Bc::SgetObject:
      case Bc::Sput:
      case Bc::SputObject:
        if (inst.index >= dex.staticCount())
            emit(result, Severity::Error, Check::BadStaticIndex,
                 inst.unit,
                 "static field index " + std::to_string(inst.index) +
                     " out of bounds");
        break;
      case Bc::InvokeStatic:
      case Bc::InvokeDirect:
        if (inst.invoke_target >= dex.methodCount())
            emit(result, Severity::Error, Check::BadMethodIndex,
                 inst.unit,
                 "method index " + std::to_string(inst.invoke_target) +
                     " out of bounds");
        break;
      default:
        // InvokeVirtual slots resolve through the receiver's vtable;
        // iget/iput offsets depend on the receiver class. Neither is
        // checkable without type information.
        break;
    }
}

} // namespace

VerifyResult
verifyMethod(const dalvik::Method &method, const dalvik::Dex *dex)
{
    VerifyResult result;
    if (method.is_native)
        return result;

    if (method.code.empty()) {
        emit(result, Severity::Error, Check::FallOffEnd, 0,
             "empty method body");
        return result;
    }

    // 1. Decode; any malformed instruction is fatal for the rest of
    //    the structural checks.
    DecodeError err = DecodeError::None;
    size_t err_unit = 0;
    std::vector<DecodedInst> insts =
        decodeAll(method.code, &err, &err_unit);
    if (err == DecodeError::BadOpcode) {
        emit(result, Severity::Error, Check::BadOpcode, err_unit,
             "unknown opcode 0x" +
                 [&] {
                     std::ostringstream os;
                     os << std::hex << (method.code[err_unit] & 0xff);
                     return os.str();
                 }());
        return result;
    }
    if (err == DecodeError::Truncated) {
        emit(result, Severity::Error, Check::TruncatedInst, err_unit,
             "instruction extends past end of code");
        return result;
    }

    std::map<size_t, size_t> unit_to_inst;
    for (size_t i = 0; i < insts.size(); ++i)
        unit_to_inst[insts[i].unit] = i;

    // 2. Per-instruction structural checks.
    for (const DecodedInst &inst : insts) {
        if (inst.isBranch()) {
            auto target = static_cast<int64_t>(inst.unit) +
                          inst.branch_offset;
            if (target < 0 ||
                target >= static_cast<int64_t>(method.code.size()))
                emit(result, Severity::Error, Check::BranchOutOfRange,
                     inst.unit,
                     "branch target " + std::to_string(target) +
                         " outside method body");
            else if (!unit_to_inst.count(static_cast<size_t>(target)))
                emit(result, Severity::Error,
                     Check::BranchMidInstruction, inst.unit,
                     "branch target " + std::to_string(target) +
                         " not on an instruction boundary");
        }

        for (uint16_t r : inst.uses)
            if (r >= method.nregs)
                emit(result, Severity::Error, Check::RegisterOutOfFrame,
                     inst.unit,
                     "reads v" + std::to_string(r) + " but frame has " +
                         std::to_string(method.nregs) + " registers");
        for (uint16_t r : inst.defs)
            if (r >= method.nregs)
                emit(result, Severity::Error, Check::RegisterOutOfFrame,
                     inst.unit,
                     "writes v" + std::to_string(r) +
                         " but frame has " +
                         std::to_string(method.nregs) + " registers");

        if (inst.fmt == dalvik::Format::F3rc &&
            static_cast<size_t>(inst.first_arg) + inst.argc >
                method.nregs)
            emit(result, Severity::Error, Check::InvokeRangeOutOfFrame,
                 inst.unit,
                 "invoke argument range v" +
                     std::to_string(inst.first_arg) + "..v" +
                     std::to_string(inst.first_arg + inst.argc) +
                     " outside frame");

        if (dex)
            checkIndices(result, inst, *dex);
    }

    // 3. Catch handler entry must be an instruction boundary.
    bool catch_ok = true;
    if (method.catch_offset >= 0) {
        auto off = static_cast<size_t>(method.catch_offset);
        if (!unit_to_inst.count(off)) {
            emit(result, Severity::Error, Check::BadCatchOffset, off,
                 "catch handler offset not on an instruction boundary");
            catch_ok = false;
        }
    }

    if (!result.ok())
        return result; // CFG-based checks need structural sanity

    // 4. CFG checks: fall-off-end (reachable block whose last
    //    instruction falls through past the end) and unreachable code.
    size_t catch_off = method.catch_offset >= 0 && catch_ok
        ? static_cast<size_t>(method.catch_offset)
        : static_cast<size_t>(-1);
    Cfg cfg = buildCfg(method.code, catch_off);

    for (const BasicBlock &bb : cfg.blocks) {
        const DecodedInst &last = cfg.lastInst(bb);
        bool at_end = bb.first + bb.count == cfg.insts.size();
        if (bb.reachable && at_end && last.fallsThrough())
            emit(result, Severity::Error, Check::FallOffEnd, last.unit,
                 "control can fall off the end of the method");
        if (!bb.reachable)
            emit(result, Severity::Warning, Check::UnreachableCode,
                 cfg.inst(bb, 0).unit,
                 std::to_string(bb.count) +
                     " unreachable instruction(s)");
    }

    if (!result.ok())
        return result;

    // 5. Use-before-def over reachable code: a must-defined fixpoint
    //    with the catch entry pinned to all-defined (any register may
    //    have been assigned on the path to the throw, so warning
    //    there would be noise).
    DefinedState entry_state;
    entry_state.valid = true;
    entry_state.defined.assign(method.nregs, false);
    for (unsigned k = 0; k < method.nins; ++k)
        entry_state.defined[method.nregs - method.nins + k] = true;

    std::vector<DefinedState> block_in(cfg.blocks.size());
    block_in[cfg.entry_block] = entry_state;
    if (cfg.catch_block != Cfg::npos) {
        block_in[cfg.catch_block].valid = true;
        block_in[cfg.catch_block].defined.assign(method.nregs, true);
    }

    std::vector<size_t> work{cfg.entry_block};
    if (cfg.catch_block != Cfg::npos)
        work.push_back(cfg.catch_block);
    while (!work.empty()) {
        size_t b = work.back();
        work.pop_back();
        DefinedState state = block_in[b];
        const BasicBlock &bb = cfg.blocks[b];
        for (size_t k = 0; k < bb.count; ++k)
            transferDefined(state, cfg.inst(bb, k));
        for (size_t s : bb.succs) {
            if (s == cfg.catch_block)
                continue; // pinned all-defined
            if (mergeDefined(block_in[s], state))
                work.push_back(s);
        }
    }

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];
        if (!bb.reachable || !block_in[b].valid)
            continue;
        DefinedState state = block_in[b];
        for (size_t k = 0; k < bb.count; ++k) {
            const DecodedInst &inst = cfg.inst(bb, k);
            for (uint16_t r : inst.uses)
                if (r < state.defined.size() && !state.defined[r])
                    emit(result, Severity::Warning, Check::UseBeforeDef,
                         inst.unit,
                         "v" + std::to_string(r) +
                             " may be used before assignment");
            transferDefined(state, inst);
        }
    }

    // 6. Degenerate-branch lint, backed by the post-dominator tree:
    //    a conditional branch whose control-dependent region is empty
    //    (the successors immediately reconverge) or free of defs and
    //    side effects decides nothing an explicit-flow analysis can
    //    see — the shape opaque predicates and Section 4.2 implicit-
    //    flow obfuscators take.
    PostDomTree pdt = buildPostDomTree(cfg);
    ControlDeps cdeps = buildControlDeps(cfg, pdt);
    auto sideEffecting = [](const DecodedInst &inst) {
        if (!inst.defs.empty())
            return true;
        switch (inst.bc) {
          case Bc::Iput:
          case Bc::IputObject:
          case Bc::Sput:
          case Bc::SputObject:
          case Bc::Aput:
          case Bc::AputChar:
          case Bc::AputObject:
          case Bc::InvokeStatic:
          case Bc::InvokeDirect:
          case Bc::InvokeVirtual:
          case Bc::Return:
          case Bc::ReturnObject:
          case Bc::ReturnVoid:
          case Bc::Throw:
            return true;
          default:
            return false;
        }
    };
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];
        if (!bb.reachable || bb.succs.size() < 2)
            continue;
        bool effect = false;
        for (size_t dep : cdeps.region(b)) {
            const BasicBlock &db = cfg.blocks[dep];
            for (size_t k = 0; k < db.count && !effect; ++k)
                effect = sideEffecting(cfg.inst(db, k));
            if (effect)
                break;
        }
        if (!effect)
            emit(result, Severity::Warning, Check::DegenerateBranch,
                 cfg.lastInst(bb).unit,
                 "branch controls no definition or side effect");
    }

    return result;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream os;
    os << (d.severity == Severity::Error ? "error" : "warning") << " ["
       << checkName(d.check) << "] at unit " << d.unit << ": "
       << d.message;
    return os.str();
}

} // namespace pift::static_analysis
