/**
 * @file
 * Bytecode verifier / lint pass.
 *
 * Structural checks a method must pass before the VM can safely run
 * it (hard errors), plus lints that flag suspicious but executable
 * code (warnings):
 *
 *   errors   — unknown opcode; truncated instruction; branch target
 *              out of range or not on an instruction boundary;
 *              register index outside the frame (including the high
 *              half of wide pairs); invoke argument range outside the
 *              frame; control falling off the end of the body; bad
 *              catch handler offset; string/class/static/method index
 *              out of bounds (when a Dex is supplied)
 *   warnings — unreachable instructions; possible use before def;
 *              degenerate branches (a conditional branch whose
 *              control-dependent region is empty or contains no
 *              definition and no side effect — the branch decides
 *              nothing, which is the shape implicit-flow obfuscators
 *              and opaque predicates take)
 *
 * Use-before-def is a must-defined forward dataflow: a register is
 * "defined" when every path from the entry assigns it. Arguments
 * (the last nins registers) start defined; the catch entry starts
 * all-defined, since any register may have been assigned before the
 * throw and a warning there would be noise.
 */

#ifndef PIFT_STATIC_VERIFIER_HH
#define PIFT_STATIC_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pift::dalvik
{
struct Method;
class Dex;
}

namespace pift::static_analysis
{

enum class Severity : uint8_t { Error, Warning };

enum class Check : uint8_t
{
    BadOpcode,
    TruncatedInst,
    BranchOutOfRange,
    BranchMidInstruction,
    RegisterOutOfFrame,
    InvokeRangeOutOfFrame,
    FallOffEnd,
    BadCatchOffset,
    BadPoolIndex,
    BadClassIndex,
    BadStaticIndex,
    BadMethodIndex,
    UnreachableCode,
    UseBeforeDef,
    DegenerateBranch
};

struct Diagnostic
{
    Severity severity = Severity::Error;
    Check check = Check::BadOpcode;
    size_t unit = 0;       //!< offending code unit index
    std::string message;
};

struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;

    bool ok() const
    {
        for (const Diagnostic &d : diagnostics)
            if (d.severity == Severity::Error)
                return false;
        return true;
    }
    size_t errorCount() const
    {
        size_t n = 0;
        for (const Diagnostic &d : diagnostics)
            n += d.severity == Severity::Error;
        return n;
    }
    size_t warningCount() const
    {
        return diagnostics.size() - errorCount();
    }
};

/**
 * Verify @p method. Native methods trivially pass. When @p dex is
 * non-null, pool/class/static/method indices are bounds-checked
 * against it.
 */
VerifyResult verifyMethod(const dalvik::Method &method,
                          const dalvik::Dex *dex = nullptr);

/** Human-readable one-line rendering of @p d. */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_VERIFIER_HH
