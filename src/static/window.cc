#include "static/window.hh"

#include <algorithm>
#include <array>
#include <set>
#include <utility>
#include <vector>

#include "dalvik/handlers.hh"
#include "mem/layout.hh"

namespace pift::static_analysis
{

using isa::Inst;
using isa::Op;

namespace
{

constexpr unsigned num_host_regs = 16;
constexpr RegIndex host_pc = 15;

/** What a host register holds during the abstract walk. */
enum class Tag : uint8_t
{
    Other,      //!< constants, flags scratch, unknown
    Meta,       //!< code units, opcode bits, pool entries
    FpDeriv,    //!< address derived from rFP
    SelfPtr,    //!< rSELF itself
    PoolTbl,    //!< string-pool table pointer (VM metadata)
    StaticsTbl, //!< statics table pointer (program data table)
    Data        //!< program data; provenance = contributing loads
};

struct RegState
{
    Tag tag = Tag::Other;
    std::set<size_t> prov; //!< positions of contributing data loads
};

/** Memory-space classification of one access. */
enum class Space : uint8_t
{
    Meta,      //!< code fetch, pool table/entries, unknown
    Frame,     //!< virtual register
    Heap,      //!< object/array body through a data-held ref
    Statics,   //!< statics table entry
    Retval,    //!< thread retval slot
    Exception, //!< thread pending-exception slot
    PoolPtr,   //!< load of the pool table pointer
    StaticsPtr //!< load of the statics table pointer
};

Space
classifyAccess(const RegState &base, int32_t offset, bool has_index)
{
    switch (base.tag) {
      case Tag::FpDeriv:
        return Space::Frame;
      case Tag::Data:
        return Space::Heap;
      case Tag::StaticsTbl:
        return Space::Statics;
      case Tag::PoolTbl:
        return Space::Meta;
      case Tag::SelfPtr:
        if (has_index)
            return Space::Meta;
        if (offset == static_cast<int32_t>(mem::thread_retval_offset))
            return Space::Retval;
        if (offset ==
            static_cast<int32_t>(mem::thread_exception_offset))
            return Space::Exception;
        if (offset == static_cast<int32_t>(mem::thread_pool_offset))
            return Space::PoolPtr;
        if (offset == static_cast<int32_t>(mem::thread_statics_offset))
            return Space::StaticsPtr;
        return Space::Meta;
      default:
        return Space::Meta;
    }
}

/** True when loads from @p space yield program data. */
bool
loadIsData(Space space)
{
    return space == Space::Frame || space == Space::Heap ||
           space == Space::Statics || space == Space::Retval ||
           space == Space::Exception;
}

/**
 * True when stores to @p space are candidate data stores. The
 * exception slot is VM unwind state, not a program location — Throw
 * writes it without that counting as a data move (and MoveException's
 * clearing store likewise).
 */
bool
storeIsData(Space space)
{
    return space == Space::Frame || space == Space::Heap ||
           space == Space::Statics || space == Space::Retval;
}

/** True for the data-processing ops whose rn is a value source. */
bool
usesRn(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::Mvn:
        return false;
      default:
        return true;
    }
}

bool
writesRd(Op op)
{
    switch (op) {
      case Op::Cmp:
      case Op::Cmn:
      case Op::Tst:
      case Op::Nop:
      case Op::B:
      case Op::Bl:
      case Op::Bx:
      case Op::Svc:
      case Op::Halt:
        return false;
      default:
        return true;
    }
}

/** Number of value registers a single-transfer memory op moves. */
unsigned
transferRegs(Op op)
{
    return op == Op::Ldrd || op == Op::Strd ? 2 : 1;
}

struct HandlerProfile
{
    size_t total_insts = 0;
    bool has_svc = false;
    bool has_cond_branch = false;
    /** Dispatch (`add pc, ...`) positions. */
    std::vector<size_t> dispatch_pos;
    /** Position of the first conditional branch. */
    size_t cond_branch_pos = 0;
    /** Frame-load positions (for branch-handler tails). */
    std::vector<size_t> frame_load_pos;
    /** Svc positions. */
    std::vector<size_t> svc_pos;
    /** All stores to data space: (position, value-was-data). */
    std::vector<std::pair<size_t, bool>> data_space_stores;
    /** Counted data stores / loads (use-based). */
    std::set<size_t> counted_stores;
    std::set<size_t> counted_loads;
};

HandlerProfile
walkHandler(const isa::Program &prog)
{
    HandlerProfile profile;
    profile.total_insts = prog.insts.size();

    std::array<RegState, num_host_regs> regs;
    regs[dalvik::r_fp].tag = Tag::FpDeriv;
    regs[dalvik::r_self].tag = Tag::SelfPtr;
    regs[dalvik::r_pc_bc].tag = Tag::Meta;
    regs[dalvik::r_inst].tag = Tag::Meta;
    regs[dalvik::r_ibase].tag = Tag::Meta;

    auto combine = [](std::vector<const RegState *> sources) {
        RegState out;
        for (const RegState *s : sources) {
            if (s->tag == Tag::Data) {
                out.tag = Tag::Data;
                out.prov.insert(s->prov.begin(), s->prov.end());
            }
        }
        if (out.tag == Tag::Data)
            return out;
        for (const RegState *s : sources)
            if (s->tag == Tag::FpDeriv)
                return RegState{Tag::FpDeriv, {}};
        for (const RegState *s : sources)
            if (s->tag == Tag::PoolTbl)
                return RegState{Tag::PoolTbl, {}};
        for (const RegState *s : sources)
            if (s->tag == Tag::StaticsTbl)
                return RegState{Tag::StaticsTbl, {}};
        for (const RegState *s : sources)
            if (s->tag == Tag::Meta)
                return RegState{Tag::Meta, {}};
        return out;
    };

    for (size_t pos = 0; pos < prog.insts.size(); ++pos) {
        const Inst &inst = prog.insts[pos];

        if (inst.op == Op::Svc) {
            profile.has_svc = true;
            profile.svc_pos.push_back(pos);
            continue;
        }
        if (inst.op == Op::B && inst.cond != isa::Cond::Al &&
            !profile.has_cond_branch) {
            profile.has_cond_branch = true;
            profile.cond_branch_pos = pos;
            continue;
        }
        if (inst.op == Op::B || inst.op == Op::Bl ||
            inst.op == Op::Bx || inst.op == Op::Halt ||
            inst.op == Op::Nop)
            continue;

        if (isa::isLoad(inst.op)) {
            const RegState &base = regs[inst.mem.base];
            Space space = classifyAccess(base, inst.mem.offset,
                                         inst.mem.index != no_reg);
            RegState value;
            if (space == Space::PoolPtr)
                value.tag = Tag::PoolTbl;
            else if (space == Space::StaticsPtr)
                value.tag = Tag::StaticsTbl;
            else if (loadIsData(space)) {
                value.tag = Tag::Data;
                value.prov.insert(pos);
            } else
                value.tag = Tag::Meta;
            if (space == Space::Frame)
                profile.frame_load_pos.push_back(pos);
            unsigned n = inst.op == Op::Ldm ? inst.reg_count
                                            : transferRegs(inst.op);
            for (unsigned k = 0; k < n; ++k)
                if (inst.rd + k < num_host_regs)
                    regs[inst.rd + k] = value;
            continue;
        }

        if (isa::isStore(inst.op)) {
            const RegState &base = regs[inst.mem.base];
            Space space = classifyAccess(base, inst.mem.offset,
                                         inst.mem.index != no_reg);
            if (storeIsData(space)) {
                unsigned n = inst.op == Op::Stm ? inst.reg_count
                                                : transferRegs(inst.op);
                std::set<size_t> value_prov;
                bool is_data_value = false;
                for (unsigned k = 0; k < n; ++k) {
                    if (inst.rd + k >= num_host_regs)
                        continue;
                    const RegState &v = regs[inst.rd + k];
                    if (v.tag == Tag::Data) {
                        is_data_value = true;
                        value_prov.insert(v.prov.begin(),
                                          v.prov.end());
                    }
                }
                profile.data_space_stores.emplace_back(pos,
                                                       is_data_value);
                if (is_data_value) {
                    profile.counted_stores.insert(pos);
                    profile.counted_loads.insert(value_prov.begin(),
                                                 value_prov.end());
                }
            }
            continue;
        }

        // Data-processing: propagate tags from value sources only.
        if (inst.rd != no_reg && writesRd(inst.op)) {
            std::vector<const RegState *> sources;
            if (usesRn(inst.op) && inst.rn != no_reg &&
                inst.rn < num_host_regs)
                sources.push_back(&regs[inst.rn]);
            if (!inst.op2.is_imm && inst.op2.reg != no_reg &&
                inst.op2.reg < num_host_regs)
                sources.push_back(&regs[inst.op2.reg]);
            RegState result = combine(sources);
            if (inst.rd == host_pc) {
                profile.dispatch_pos.push_back(pos);
                continue;
            }
            if (inst.rd < num_host_regs)
                regs[inst.rd] = result;
        }
    }

    return profile;
}

/** Distance and counts for one handler from its walk profile. */
OpcodeWindow
summarize(dalvik::Bc bc, const HandlerProfile &profile)
{
    OpcodeWindow w;
    w.bc = bc;
    w.data_store_count = static_cast<int>(profile.counted_stores.size());
    w.data_load_count = static_cast<int>(profile.counted_loads.size());
    if (profile.counted_stores.empty() ||
        profile.counted_loads.empty()) {
        w.derived_distance = -1;
        return w;
    }
    size_t lo = *profile.counted_loads.begin();
    size_t hi = *profile.counted_stores.rbegin();
    for (size_t svc : profile.svc_pos)
        if (svc > lo && svc < hi) {
            w.derived_distance = -2;
            return w;
        }
    w.derived_distance = static_cast<int>(hi - lo);
    return w;
}

} // namespace

WindowDerivation
deriveWindowBounds(const dalvik::HandlerSet &set)
{
    WindowDerivation result;
    result.opcodes.resize(dalvik::num_bytecodes);

    std::vector<HandlerProfile> profiles;
    profiles.reserve(dalvik::num_bytecodes);
    for (unsigned op = 0; op < dalvik::num_bytecodes; ++op) {
        auto bc = static_cast<dalvik::Bc>(op);
        profiles.push_back(walkHandler(set.handlers[op]));
        result.opcodes[op] = summarize(bc, profiles.back());
    }

    // NI lower bound 1: the longest intra-handler data distance.
    for (const OpcodeWindow &w : result.opcodes)
        result.intra_max = std::max(result.intra_max,
                                    w.derived_distance);

    // NI lower bound 2: the implicit-flow chain of Section 4.2.
    // (a) A conditional branch opens the window at its operand load;
    //     the not-taken path retires the rest of the handler.
    for (const HandlerProfile &p : profiles) {
        if (!p.has_cond_branch || p.frame_load_pos.empty())
            continue;
        size_t load = *std::min_element(p.frame_load_pos.begin(),
                                        p.frame_load_pos.end());
        // The fall-through path ends at the first dispatch after the
        // conditional branch.
        for (size_t d : p.dispatch_pos)
            if (d > p.cond_branch_pos) {
                result.branch_tail_max =
                    std::max(result.branch_tail_max,
                             static_cast<int>(d - load));
                break;
            }
    }

    // (b) The obfuscator interposes the cheapest handler that stores
    //     to program-data space (no SVC — callouts make the chain
    //     longer than the attacker wants, no branches).
    int min_interposed = 1 << 20;
    for (size_t op = 0; op < profiles.size(); ++op) {
        const HandlerProfile &p = profiles[op];
        if (p.has_svc || p.has_cond_branch ||
            p.data_space_stores.empty())
            continue;
        if (static_cast<int>(p.total_insts) < min_interposed) {
            min_interposed = static_cast<int>(p.total_insts);
            result.interposed_stores =
                static_cast<int>(p.data_space_stores.size());
        }
    }
    result.min_interposed = min_interposed == 1 << 20 ? 0
                                                      : min_interposed;

    // (c) The final constant store: longest prefix, through its data-
    //     space store, of a handler whose store writes a non-data
    //     value (const4/const16/const-string).
    for (const HandlerProfile &p : profiles) {
        if (p.has_svc || p.has_cond_branch)
            continue;
        for (auto [pos, is_data] : p.data_space_stores)
            if (!is_data)
                result.max_const_prefix =
                    std::max(result.max_const_prefix,
                             static_cast<int>(pos) + 1);
    }

    result.derived_ni =
        std::max(result.intra_max,
                 result.branch_tail_max + result.min_interposed +
                     result.max_const_prefix);
    result.derived_nt = 1 + result.interposed_stores;

    return result;
}

WindowDerivation
deriveWindowBounds()
{
    dalvik::HandlerSet set = dalvik::emitHandlers();
    return deriveWindowBounds(set);
}

} // namespace pift::static_analysis
