/**
 * @file
 * Window-bound derivation from the native handler templates.
 *
 * PIFT's Table 1 is measured by tracing; this pass *derives* the same
 * per-opcode load->store distances by walking the emitted handler
 * instructions with an abstract def-use interpretation — no execution
 * and no reliance on the emitter's own data-move annotations. From
 * the per-handler results it also derives a recommended taint window
 * (NI, NT):
 *
 *   NI >= every intra-handler data distance, and >= the longest
 *         implicit-flow chain a Section 4.2 obfuscator can build:
 *         the fall-through tail after a conditional branch's operand
 *         load, plus the shortest interposable data-store handler,
 *         plus the longest constant-store handler prefix;
 *   NT >= 1 + the store count of the interposed handler.
 *
 * The abstract interpretation tags each host register with what it
 * holds: a frame-derived address, the string-pool or statics table
 * pointer, program data (with the positions of the loads it came
 * from), or interpreter metadata. A load counts as a *data load* only
 * when its value reaches the stored operand of a *data store* (a
 * store to frame/heap/statics/retval whose value is program data) —
 * address-only uses, compare-only uses and VM bookkeeping do not
 * count, which is exactly the distinction Table 1 draws.
 */

#ifndef PIFT_STATIC_WINDOW_HH
#define PIFT_STATIC_WINDOW_HH

#include <vector>

#include "dalvik/bytecode.hh"

namespace pift::dalvik
{
struct HandlerSet;
}

namespace pift::static_analysis
{

/** Derived data-movement profile of one handler template. */
struct OpcodeWindow
{
    dalvik::Bc bc = dalvik::Bc::Nop;
    /**
     * Longest counted load->store distance in retired instructions;
     * -1 when the handler moves no data, -2 when a runtime callout
     * (SVC) sits inside the span ("unknown" in Table 1).
     */
    int derived_distance = -1;
    int data_store_count = 0;   //!< counted data stores
    int data_load_count = 0;    //!< counted data loads
};

/** Whole-interpreter derivation result. */
struct WindowDerivation
{
    std::vector<OpcodeWindow> opcodes;  //!< indexed by opcode value

    int intra_max = 0;        //!< max finite per-opcode distance
    int branch_tail_max = 0;  //!< branch-operand load -> dispatch
    int min_interposed = 0;   //!< shortest interposable store handler
    int max_const_prefix = 0; //!< longest const-store handler prefix
    int interposed_stores = 0;//!< data-space stores of the interposed

    int derived_ni = 0;
    int derived_nt = 0;

    const OpcodeWindow &forBc(dalvik::Bc bc) const
    {
        return opcodes[static_cast<unsigned>(bc)];
    }
};

/** Derive bounds from an already emitted interpreter. */
WindowDerivation deriveWindowBounds(const dalvik::HandlerSet &set);

/** Emit the interpreter and derive bounds from it. */
WindowDerivation deriveWindowBounds();

} // namespace pift::static_analysis

#endif // PIFT_STATIC_WINDOW_HH
