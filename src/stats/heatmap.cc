#include "stats/heatmap.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::stats
{

HeatMap::HeatMap(std::string row_name_, int row_lo_, int row_hi_,
                 std::string col_name_, int col_lo_, int col_hi_)
    : row_name(std::move(row_name_)), row_lo(row_lo_), row_hi(row_hi_),
      col_name(std::move(col_name_)), col_lo(col_lo_), col_hi(col_hi_),
      cells(static_cast<size_t>(row_hi_ - row_lo_ + 1)
            * static_cast<size_t>(col_hi_ - col_lo_ + 1), 0.0)
{
    pift_assert(row_hi >= row_lo && col_hi >= col_lo,
                "inverted heat map axis");
}

size_t
HeatMap::index(int row, int col) const
{
    pift_assert(row >= row_lo && row <= row_hi, "heat map row out of range");
    pift_assert(col >= col_lo && col <= col_hi, "heat map col out of range");
    size_t width = static_cast<size_t>(col_hi - col_lo + 1);
    return static_cast<size_t>(row - row_lo) * width
        + static_cast<size_t>(col - col_lo);
}

void
HeatMap::set(int row, int col, double value)
{
    cells[index(row, col)] = value;
}

double
HeatMap::at(int row, int col) const
{
    return cells[index(row, col)];
}

double
HeatMap::max() const
{
    if (cells.empty())
        return 0.0;
    return *std::max_element(cells.begin(), cells.end());
}

double
HeatMap::min() const
{
    if (cells.empty())
        return 0.0;
    return *std::min_element(cells.begin(), cells.end());
}

} // namespace pift::stats
