/**
 * @file
 * Dense 2-D table of doubles with labelled axes.
 *
 * Used for the NI-by-NT parameter-sweep figures (11, 14, 17). Rows are
 * indexed by the first axis value, columns by the second; both axes are
 * inclusive integer ranges (e.g. NI in [1,20], NT in [1,10]).
 */

#ifndef PIFT_STATS_HEATMAP_HH
#define PIFT_STATS_HEATMAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pift::stats
{

/** A labelled matrix over two inclusive integer parameter ranges. */
class HeatMap
{
  public:
    /**
     * @param row_name label of the row axis (e.g. "NT")
     * @param row_lo first row value
     * @param row_hi last row value
     * @param col_name label of the column axis (e.g. "NI")
     * @param col_lo first column value
     * @param col_hi last column value
     */
    HeatMap(std::string row_name, int row_lo, int row_hi,
            std::string col_name, int col_lo, int col_hi);

    /** Set the cell for axis values (@p row, @p col). */
    void set(int row, int col, double value);

    /** Read the cell for axis values (@p row, @p col). */
    double at(int row, int col) const;

    int rowLo() const { return row_lo; }
    int rowHi() const { return row_hi; }
    int colLo() const { return col_lo; }
    int colHi() const { return col_hi; }
    const std::string &rowName() const { return row_name; }
    const std::string &colName() const { return col_name; }

    /** Largest cell value (0 if empty). */
    double max() const;

    /** Smallest cell value (0 if empty). */
    double min() const;

  private:
    size_t index(int row, int col) const;

    std::string row_name;
    int row_lo;
    int row_hi;
    std::string col_name;
    int col_lo;
    int col_hi;
    std::vector<double> cells;
};

} // namespace pift::stats

#endif // PIFT_STATS_HEATMAP_HH
