#include "stats/histogram.hh"

#include "support/logging.hh"

namespace pift::stats
{

Histogram::Histogram(uint64_t max_value)
    : buckets(max_value + 1, 0)
{
    pift_assert(max_value < (1ull << 32),
                "histogram domain unreasonably large");
}

void
Histogram::add(uint64_t value, uint64_t weight)
{
    if (value >= buckets.size()) {
        over += weight;
    } else {
        buckets[value] += weight;
        in_range_sum += value * weight;
    }
    total += weight;
}

uint64_t
Histogram::at(uint64_t value) const
{
    pift_assert(value < buckets.size(), "histogram bucket out of range");
    return buckets[value];
}

double
Histogram::probability(uint64_t value) const
{
    if (total == 0)
        return 0.0;
    uint64_t c = value < buckets.size() ? buckets[value] : 0;
    return static_cast<double>(c) / static_cast<double>(total);
}

double
Histogram::cdf(uint64_t value) const
{
    if (total == 0)
        return 0.0;
    uint64_t c = 0;
    uint64_t limit = value < buckets.size() ? value : buckets.size() - 1;
    for (uint64_t v = 0; v <= limit; ++v)
        c += buckets[v];
    if (value >= buckets.size())
        c += over;
    return static_cast<double>(c) / static_cast<double>(total);
}

double
Histogram::mean() const
{
    uint64_t in_range = total - over;
    if (in_range == 0)
        return 0.0;
    return static_cast<double>(in_range_sum)
        / static_cast<double>(in_range);
}

uint64_t
Histogram::quantile(double q) const
{
    if (total == 0)
        return buckets.size();
    uint64_t threshold =
        static_cast<uint64_t>(q * static_cast<double>(total));
    uint64_t c = 0;
    for (uint64_t v = 0; v < buckets.size(); ++v) {
        c += buckets[v];
        if (static_cast<double>(c) >= static_cast<double>(threshold) &&
            c > 0 && cdf(v) >= q) {
            return v;
        }
    }
    return buckets.size();
}

void
Histogram::merge(const Histogram &other)
{
    pift_assert(other.buckets.size() == buckets.size(),
                "merging histograms of different geometry");
    for (size_t v = 0; v < buckets.size(); ++v)
        buckets[v] += other.buckets[v];
    total += other.total;
    over += other.over;
    in_range_sum += other.in_range_sum;
}

void
Histogram::clear()
{
    for (auto &b : buckets)
        b = 0;
    total = over = in_range_sum = 0;
}

} // namespace pift::stats
