/**
 * @file
 * Integer-binned histogram with overflow bucket.
 *
 * The evaluation figures in the PIFT paper are all distributions over
 * small integer metrics (instruction distances, store counts), so a
 * dense vector of buckets with a single overflow bucket is the right
 * shape: O(1) insert, exact probability/CDF readout.
 */

#ifndef PIFT_STATS_HISTOGRAM_HH
#define PIFT_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace pift::stats
{

/** Dense histogram over the integer domain [0, maxValue] + overflow. */
class Histogram
{
  public:
    /**
     * @param max_value largest value tracked exactly; anything above
     *                  lands in the overflow bucket
     */
    explicit Histogram(uint64_t max_value);

    /** Record one sample. */
    void add(uint64_t value) { add(value, 1); }

    /** Record @p weight samples of @p value at once. */
    void add(uint64_t value, uint64_t weight);

    /** Number of samples recorded, including overflow. */
    uint64_t count() const { return total; }

    /** Number of samples that exceeded maxValue. */
    uint64_t overflow() const { return over; }

    /** Raw count in bucket @p value (must be <= maxValue). */
    uint64_t at(uint64_t value) const;

    /** Largest tracked value. */
    uint64_t maxValue() const { return buckets.size() - 1; }

    /** Probability mass of bucket @p value; 0 if no samples yet. */
    double probability(uint64_t value) const;

    /** Cumulative probability of values <= @p value. */
    double cdf(uint64_t value) const;

    /** Arithmetic mean of the in-range samples. */
    double mean() const;

    /** Smallest v such that cdf(v) >= @p q, or maxValue+1 if none. */
    uint64_t quantile(double q) const;

    /** Merge another histogram of identical geometry into this one. */
    void merge(const Histogram &other);

    /** Drop all samples. */
    void clear();

  private:
    std::vector<uint64_t> buckets;
    uint64_t total = 0;
    uint64_t over = 0;
    uint64_t in_range_sum = 0;
};

} // namespace pift::stats

#endif // PIFT_STATS_HISTOGRAM_HH
