#include "stats/render.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace pift::stats
{

namespace
{

std::string
formatCell(const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

} // anonymous namespace

void
renderDistribution(std::ostream &os, const std::string &title,
                   const Histogram &h, uint64_t limit)
{
    os << "== " << title << " ==\n";
    os << "samples: " << h.count()
       << "  mean: " << formatCell("%.3f", h.mean())
       << "  overflow(>" << std::min(limit, h.maxValue()) << "): "
       << formatCell("%.4f",
                     h.count() ? 1.0 - h.cdf(std::min(limit, h.maxValue()))
                               : 0.0)
       << "\n";
    os << "value     count       prob     cdf\n";
    for (uint64_t v = 0; v <= limit && v <= h.maxValue(); ++v) {
        double p = h.probability(v);
        os << formatCell("%5.0f", static_cast<double>(v)) << " "
           << formatCell("%9.0f", static_cast<double>(h.at(v))) << " "
           << formatCell("%10.4f", p) << " "
           << formatCell("%7.4f", h.cdf(v)) << "  ";
        int bar = static_cast<int>(p * 60.0 + 0.5);
        for (int i = 0; i < bar; ++i)
            os << '#';
        os << "\n";
    }
}

void
renderDistributionCsv(std::ostream &os, const Histogram &h, uint64_t limit)
{
    os << "value,count,probability,cdf\n";
    for (uint64_t v = 0; v <= limit && v <= h.maxValue(); ++v) {
        os << v << "," << h.at(v) << ","
           << formatCell("%.6f", h.probability(v)) << ","
           << formatCell("%.6f", h.cdf(v)) << "\n";
    }
}

void
renderHeatMap(std::ostream &os, const std::string &title,
              const HeatMap &map, const char *cell_fmt)
{
    os << "== " << title << " ==\n";
    os << map.rowName() << " (rows) x " << map.colName() << " (cols)\n";
    os << "      ";
    for (int c = map.colLo(); c <= map.colHi(); ++c)
        os << formatCell("%8.0f", static_cast<double>(c));
    os << "\n";
    for (int r = map.rowHi(); r >= map.rowLo(); --r) {
        os << formatCell("%5.0f", static_cast<double>(r)) << " ";
        for (int c = map.colLo(); c <= map.colHi(); ++c)
            os << formatCell(cell_fmt, map.at(r, c));
        os << "\n";
    }
}

void
renderHeatMapCsv(std::ostream &os, const HeatMap &map)
{
    os << map.rowName() << "," << map.colName() << ",value\n";
    for (int r = map.rowLo(); r <= map.rowHi(); ++r)
        for (int c = map.colLo(); c <= map.colHi(); ++c)
            os << r << "," << c << ","
               << formatCell("%.6g", map.at(r, c)) << "\n";
}

void
renderTimeSeries(std::ostream &os, const std::string &title,
                 const std::vector<std::string> &names,
                 const std::vector<const TimeSeries *> &series,
                 SeqNum horizon, size_t points)
{
    pift_assert(names.size() == series.size(),
                "time series name/series mismatch");
    os << "== " << title << " ==\n";
    os << "instructions";
    for (const auto &n : names)
        os << "," << n;
    os << "\n";
    for (size_t i = 0; i < points; ++i) {
        SeqNum seq = points == 1
            ? horizon
            : static_cast<SeqNum>(
                  static_cast<double>(horizon) * static_cast<double>(i)
                  / static_cast<double>(points - 1));
        os << seq;
        for (const auto *s : series)
            os << "," << formatCell("%.6g", s->valueAt(seq));
        os << "\n";
    }
}

} // namespace pift::stats
