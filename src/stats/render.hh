/**
 * @file
 * Text renderers for the statistics containers.
 *
 * Every bench prints its figure/table both as a human-readable ASCII
 * block (so `./bench_*` output can be eyeballed against the paper) and
 * as CSV rows (so the data can be re-plotted). These helpers keep the
 * formatting consistent across benches.
 */

#ifndef PIFT_STATS_RENDER_HH
#define PIFT_STATS_RENDER_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

#include "stats/heatmap.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace pift::stats
{

/**
 * Print a histogram as a probability/CDF table plus ASCII bars,
 * covering the domain [0, limit].
 *
 * @param os destination stream
 * @param title heading for the block
 * @param h histogram to print
 * @param limit last value row to print
 */
void renderDistribution(std::ostream &os, const std::string &title,
                        const Histogram &h, uint64_t limit);

/** Print a histogram as `value,count,probability,cdf` CSV rows. */
void renderDistributionCsv(std::ostream &os, const Histogram &h,
                           uint64_t limit);

/**
 * Print a heat map as a column-labelled matrix with a fixed cell
 * format (printf-style @p cell_fmt applied to each double).
 */
void renderHeatMap(std::ostream &os, const std::string &title,
                   const HeatMap &map, const char *cell_fmt = "%8.1f");

/** Print a heat map as `row,col,value` CSV rows. */
void renderHeatMapCsv(std::ostream &os, const HeatMap &map);

/**
 * Print several time series side by side, downsampled to @p points
 * rows over [0, horizon].
 *
 * @param os destination stream
 * @param title heading for the block
 * @param names one label per series
 * @param series the series, parallel to @p names
 * @param horizon end of the time axis
 * @param points number of rows to print
 */
void renderTimeSeries(std::ostream &os, const std::string &title,
                      const std::vector<std::string> &names,
                      const std::vector<const TimeSeries *> &series,
                      SeqNum horizon, size_t points);

} // namespace pift::stats

#endif // PIFT_STATS_RENDER_HH
