#include "stats/timeseries.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::stats
{

void
TimeSeries::record(SeqNum seq, double value)
{
    pift_assert(samples.empty() || samples.back().seq <= seq,
                "time series sequence went backwards");
    // Collapse repeated samples at the same instant: last writer wins.
    if (!samples.empty() && samples.back().seq == seq) {
        samples.back().value = value;
        return;
    }
    samples.push_back({seq, value});
}

double
TimeSeries::maxValue() const
{
    double m = 0.0;
    for (const auto &p : samples)
        m = std::max(m, p.value);
    return m;
}

double
TimeSeries::lastValue() const
{
    return samples.empty() ? 0.0 : samples.back().value;
}

double
TimeSeries::valueAt(SeqNum seq) const
{
    // Find the last sample with sample.seq <= seq.
    auto it = std::upper_bound(
        samples.begin(), samples.end(), seq,
        [](SeqNum s, const TimePoint &p) { return s < p.seq; });
    if (it == samples.begin())
        return 0.0;
    return std::prev(it)->value;
}

std::vector<TimePoint>
TimeSeries::downsample(size_t max_points, SeqNum horizon) const
{
    std::vector<TimePoint> out;
    if (max_points == 0)
        return out;
    out.reserve(max_points);
    for (size_t i = 0; i < max_points; ++i) {
        SeqNum seq = max_points == 1
            ? horizon
            : static_cast<SeqNum>(
                  static_cast<double>(horizon) * static_cast<double>(i)
                  / static_cast<double>(max_points - 1));
        out.push_back({seq, valueAt(seq)});
    }
    return out;
}

} // namespace pift::stats
