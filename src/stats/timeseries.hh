/**
 * @file
 * Sampled time series keyed by instruction sequence number.
 *
 * Figures 15 and 16 plot a metric (tainted bytes, cumulative taint
 * operations) against execution time measured in retired instructions.
 * The series records (seq, value) points; downsample() thins it to a
 * fixed number of plot points for table output.
 */

#ifndef PIFT_STATS_TIMESERIES_HH
#define PIFT_STATS_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace pift::stats
{

/** One observation on the instruction-time axis. */
struct TimePoint
{
    SeqNum seq;
    double value;
};

/** Append-only series of (instruction count, metric) samples. */
class TimeSeries
{
  public:
    /** Record @p value at instruction @p seq (seq must not decrease). */
    void record(SeqNum seq, double value);

    const std::vector<TimePoint> &points() const { return samples; }

    bool empty() const { return samples.empty(); }

    /** Largest recorded value (0 if empty). */
    double maxValue() const;

    /** Final recorded value (0 if empty). */
    double lastValue() const;

    /**
     * Value in effect at instruction @p seq: the value of the latest
     * sample at or before @p seq (0 before the first sample).
     */
    double valueAt(SeqNum seq) const;

    /**
     * Reduce to at most @p max_points evenly spaced samples over
     * [0, horizon], carrying the step-function value at each position.
     *
     * @param max_points number of output samples
     * @param horizon end of the time axis (e.g. trace length)
     */
    std::vector<TimePoint> downsample(size_t max_points,
                                      SeqNum horizon) const;

  private:
    std::vector<TimePoint> samples;
};

} // namespace pift::stats

#endif // PIFT_STATS_TIMESERIES_HH
