/**
 * @file
 * Expected-style status plumbing for recoverable failures.
 *
 * panic()/fatal() are for bugs and impossible configurations; anything
 * an I/O layer or a degraded hardware model can legitimately hit at
 * runtime (missing file, truncated trace, transient command error)
 * travels up as a Status / Expected<T> instead, so callers choose
 * between retrying, degrading, and reporting. Modeled on the
 * LLVM/abseil shape but deliberately tiny: a status is ok or carries a
 * message; an Expected is a status plus a value when ok.
 */

#ifndef PIFT_SUPPORT_EXPECTED_HH
#define PIFT_SUPPORT_EXPECTED_HH

#include <string>
#include <utility>

#include "support/logging.hh"

namespace pift
{

/** Outcome of a recoverable operation: ok, or an error message. */
class Status
{
  public:
    /** Successful status. */
    Status() = default;

    /** Failed status carrying @p message. */
    static Status
    error(std::string message)
    {
        Status s;
        s.failed = true;
        s.msg = std::move(message);
        return s;
    }

    bool ok() const { return !failed; }
    explicit operator bool() const { return ok(); }

    /** Error message; empty for ok statuses. */
    const std::string &message() const { return msg; }

  private:
    bool failed = false;
    std::string msg;
};

/** A value of type T, or the Status explaining why there is none. */
template <typename T>
class Expected
{
  public:
    /** Success, holding @p value. */
    Expected(T value) : val(std::move(value)) {}

    /** Failure; @p status must not be ok. */
    Expected(Status status) : st(std::move(status))
    {
        pift_assert(!st.ok(),
                    "Expected constructed from an ok status");
    }

    bool ok() const { return st.ok(); }
    explicit operator bool() const { return ok(); }

    const Status &status() const { return st; }
    const std::string &message() const { return st.message(); }

    /** The held value; asserts on failed Expected. */
    T &
    value()
    {
        pift_assert(ok(), "value() on failed Expected: %s",
                    st.message().c_str());
        return val;
    }

    const T &
    value() const
    {
        pift_assert(ok(), "value() on failed Expected: %s",
                    st.message().c_str());
        return val;
    }

    /** The held value, or @p fallback when failed. */
    T
    valueOr(T fallback) const
    {
        return ok() ? val : std::move(fallback);
    }

  private:
    Status st;
    T val{};
};

} // namespace pift

#endif // PIFT_SUPPORT_EXPECTED_HH
