#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "telemetry/registry.hh"

namespace pift
{

namespace
{

std::atomic<uint64_t> warn_count{0};
std::atomic<uint64_t> warn_suppressed{0};
std::atomic<bool> quiet{false};

std::mutex rate_limit_mutex;
std::unordered_map<std::string, uint64_t> rate_limit_counts;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // anonymous namespace

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    if (level == LogLevel::Inform && quiet.load(std::memory_order_relaxed))
        return;
    if (level == LogLevel::Warn)
        warn_count.fetch_add(1, std::memory_order_relaxed);

    FILE *out = level == LogLevel::Inform ? stdout : stderr;
    std::fprintf(out, "%s: ", levelTag(level));

    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(out, fmt, ap);
    va_end(ap);

    if (level != LogLevel::Inform)
        std::fprintf(out, " (%s:%d)", file, line);
    std::fprintf(out, "\n");

    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

uint64_t
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

bool
warnRateLimit(const std::string &key, uint64_t limit)
{
    std::lock_guard<std::mutex> lock(rate_limit_mutex);
    return rate_limit_counts[key]++ < limit;
}

void
noteSuppressedWarn()
{
    warn_count.fetch_add(1, std::memory_order_relaxed);
    warn_suppressed.fetch_add(1, std::memory_order_relaxed);
    // Suppressed warnings are degraded-mode incidents; export them so
    // operators can count what rate limiting hid from the log.
    static telemetry::Counter &suppressed =
        telemetry::counter("support.warnings_suppressed_total");
    suppressed.inc();
}

uint64_t
warnSuppressedCount()
{
    return warn_suppressed.load(std::memory_order_relaxed);
}

void
resetWarnRateLimits()
{
    std::lock_guard<std::mutex> lock(rate_limit_mutex);
    rate_limit_counts.clear();
}

void
setQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

} // namespace pift
