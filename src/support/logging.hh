/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - an internal invariant was violated (a PIFT bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is off but the run can continue.
 * inform() - plain status output.
 */

#ifndef PIFT_SUPPORT_LOGGING_HH
#define PIFT_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pift
{

/** Severity classes understood by the log backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the log backend. Fatal exits the process
 * with status 1; Panic aborts (core-dump friendly). Not expected to be
 * called directly; use the macros below so file/line are captured.
 *
 * @param level severity of the message
 * @param file source file of the call site
 * @param line source line of the call site
 * @param fmt printf-style format string
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

/**
 * Number of warnings emitted so far (used by tests to assert
 * warning-free runs).
 */
uint64_t warnCount();

/**
 * Redirect informational output. Benches use this to silence module
 * chatter while printing machine-readable tables.
 *
 * @param quiet when true, inform() messages are dropped
 */
void setQuiet(bool quiet);

} // namespace pift

#define pift_panic(...) \
    ::pift::logMessage(::pift::LogLevel::Panic, __FILE__, __LINE__, \
                       __VA_ARGS__)
#define pift_fatal(...) \
    ::pift::logMessage(::pift::LogLevel::Fatal, __FILE__, __LINE__, \
                       __VA_ARGS__)
#define pift_warn(...) \
    ::pift::logMessage(::pift::LogLevel::Warn, __FILE__, __LINE__, \
                       __VA_ARGS__)
#define pift_inform(...) \
    ::pift::logMessage(::pift::LogLevel::Inform, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** Invariant check that survives NDEBUG builds. */
#define pift_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::pift::logMessage(::pift::LogLevel::Panic, __FILE__, \
                               __LINE__, __VA_ARGS__); \
        } \
    } while (0)

#endif // PIFT_SUPPORT_LOGGING_HH
