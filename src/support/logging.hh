/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - an internal invariant was violated (a PIFT bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is off but the run can continue.
 * inform() - plain status output.
 */

#ifndef PIFT_SUPPORT_LOGGING_HH
#define PIFT_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace pift
{

/** Severity classes understood by the log backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the log backend. Fatal exits the process
 * with status 1; Panic aborts (core-dump friendly). Not expected to be
 * called directly; use the macros below so file/line are captured.
 *
 * @param level severity of the message
 * @param file source file of the call site
 * @param line source line of the call site
 * @param fmt printf-style format string
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

/**
 * Number of warnings raised so far (used by tests to assert
 * warning-free runs). Warnings suppressed by warnRateLimit() still
 * count here — rate limiting hides output, not the fact that
 * something warned.
 */
uint64_t warnCount();

/**
 * Rate-limit gate for warning sites that can fire once per event
 * (fault injection, degraded-mode paths). Returns true at most
 * @p limit times per distinct @p key; afterwards the site should skip
 * emitting. Suppressed calls are recorded via noteSuppressedWarn() by
 * the pift_warn_limited macro so warnCount() semantics survive.
 *
 * @param key stable identity of the warning site/category
 * @param limit maximum number of emissions for this key
 */
bool warnRateLimit(const std::string &key, uint64_t limit);

/**
 * Count a warning that was raised but suppressed by rate limiting.
 * Also increments the `support.warnings_suppressed_total` telemetry
 * counter so suppressed degraded-mode incidents stay countable in
 * metrics snapshots, not just in-process.
 */
void noteSuppressedWarn();

/** Warnings suppressed by warnRateLimit() so far. */
uint64_t warnSuppressedCount();

/** Forget all warnRateLimit() keys (tests reuse warning sites). */
void resetWarnRateLimits();

/**
 * Redirect informational output. Benches use this to silence module
 * chatter while printing machine-readable tables.
 *
 * @param quiet when true, inform() messages are dropped
 */
void setQuiet(bool quiet);

} // namespace pift

#define pift_panic(...) \
    ::pift::logMessage(::pift::LogLevel::Panic, __FILE__, __LINE__, \
                       __VA_ARGS__)
#define pift_fatal(...) \
    ::pift::logMessage(::pift::LogLevel::Fatal, __FILE__, __LINE__, \
                       __VA_ARGS__)
#define pift_warn(...) \
    ::pift::logMessage(::pift::LogLevel::Warn, __FILE__, __LINE__, \
                       __VA_ARGS__)

/**
 * Warn at most @p limit times per call site, then suppress output
 * (still counted by warnCount()/warnSuppressedCount()). For per-event
 * conditions that would otherwise flood bench output.
 */
#define pift_warn_limited(limit, ...) \
    do { \
        if (::pift::warnRateLimit(std::string(__FILE__) + ":" + \
                                      std::to_string(__LINE__), \
                                  limit)) { \
            pift_warn(__VA_ARGS__); \
        } else { \
            ::pift::noteSuppressedWarn(); \
        } \
    } while (0)
#define pift_inform(...) \
    ::pift::logMessage(::pift::LogLevel::Inform, __FILE__, __LINE__, \
                       __VA_ARGS__)

/** Invariant check that survives NDEBUG builds. */
#define pift_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::pift::logMessage(::pift::LogLevel::Panic, __FILE__, \
                               __LINE__, __VA_ARGS__); \
        } \
    } while (0)

#endif // PIFT_SUPPORT_LOGGING_HH
