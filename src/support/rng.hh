/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Everything in this reproduction must be bit-for-bit repeatable across
 * runs (traces feed parameter sweeps that are compared against recorded
 * expectations), so all randomness flows through this splitmix64-based
 * generator with explicit seeding. Never use std::rand or
 * std::random_device in simulation code.
 */

#ifndef PIFT_SUPPORT_RNG_HH
#define PIFT_SUPPORT_RNG_HH

#include <cstdint>

namespace pift
{

/** Small, fast, deterministic RNG (splitmix64). */
class Rng
{
  public:
    /** @param seed initial state; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @param bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    uint64_t state;
};

} // namespace pift

#endif // PIFT_SUPPORT_RNG_HH
