/**
 * @file
 * Fundamental type aliases shared by every PIFT module.
 *
 * The simulated machine is a 32-bit ARM-like device (the paper targets
 * ARMv7 Android handsets), so simulated addresses are 32 bits wide. We
 * still pass them around as plain integers rather than a wrapper type;
 * the AddrRange type in taint/ provides the structured view.
 */

#ifndef PIFT_SUPPORT_TYPES_HH
#define PIFT_SUPPORT_TYPES_HH

#include <cstdint>

namespace pift
{

/** A simulated physical/virtual address on the 32-bit target. */
using Addr = uint32_t;

/** Process identifier as seen by the PIFT hardware front-end (TTBR/PID). */
using ProcId = uint32_t;

/** Monotonic per-CPU retired-instruction sequence number. */
using SeqNum = uint64_t;

/** Register index on the simulated CPU (r0..r15). */
using RegIndex = uint8_t;

/** Sentinel register index meaning "no register operand". */
inline constexpr RegIndex no_reg = 0xff;

} // namespace pift

#endif // PIFT_SUPPORT_TYPES_HH
