/**
 * @file
 * Inclusive address range, the unit of taint in PIFT.
 *
 * The paper defines a tainted range r_i = [s_i, e_i] with s_i and e_i
 * the start and end addresses, and the overlap test
 * max(s_i, s_L) <= min(e_i, e_L) (Section 3.2). Ranges here are
 * inclusive on both ends to match.
 */

#ifndef PIFT_TAINT_ADDR_RANGE_HH
#define PIFT_TAINT_ADDR_RANGE_HH

#include <algorithm>
#include <cstdint>

#include "support/types.hh"

namespace pift::taint
{

/** Inclusive byte range [start, end] in the simulated address space. */
struct AddrRange
{
    Addr start = 1;
    Addr end = 0;   //!< default-constructed range is invalid/empty

    AddrRange() = default;
    AddrRange(Addr s, Addr e) : start(s), end(e) {}

    /** Build from a start address and a byte count (> 0). */
    static AddrRange
    fromSize(Addr s, Addr bytes)
    {
        return AddrRange(s, s + bytes - 1);
    }

    bool valid() const { return start <= end; }

    /** Number of bytes covered (0 for invalid ranges). */
    uint64_t
    bytes() const
    {
        return valid()
            ? static_cast<uint64_t>(end) - static_cast<uint64_t>(start)
                + 1
            : 0;
    }

    /** The paper's overlap condition: max(s,sL) <= min(e,eL). */
    bool
    overlaps(const AddrRange &other) const
    {
        return valid() && other.valid() &&
            std::max(start, other.start) <= std::min(end, other.end);
    }

    bool contains(Addr a) const { return valid() && a >= start && a <= end; }

    /** True when @p other lies fully within this range. */
    bool
    covers(const AddrRange &other) const
    {
        return valid() && other.valid() && start <= other.start &&
            other.end <= end;
    }

    /** True when the two ranges overlap or touch (end+1 == start). */
    bool
    touches(const AddrRange &other) const
    {
        if (overlaps(other))
            return true;
        if (!valid() || !other.valid())
            return false;
        return (end != ~Addr(0) && end + 1 == other.start) ||
            (other.end != ~Addr(0) && other.end + 1 == start);
    }

    bool
    operator==(const AddrRange &other) const
    {
        return start == other.start && end == other.end;
    }
};

} // namespace pift::taint

#endif // PIFT_TAINT_ADDR_RANGE_HH
