#include "taint/range_set.hh"

#include <algorithm>
#include <cstddef>

#include "support/logging.hh"

namespace pift::taint
{

bool
RangeSet::insert(const AddrRange &r)
{
    if (!r.valid())
        return false;

    Addr new_start = r.start;
    Addr new_end = r.end;
    uint64_t absorbed = 0;

    // Find the first range that could merge: the predecessor of the
    // insertion point if it overlaps or is adjacent, else the
    // insertion point itself.
    size_t i = firstAbove(new_start);
    if (i > 0) {
        Addr prev_end = ends_[i - 1];
        if (prev_end >= new_start ||
            (new_start > 0 && prev_end == new_start - 1)) {
            --i;
        }
    }

    // Absorb every range that overlaps or touches [new_start,new_end].
    // They are consecutive: ranges are sorted and the merged range
    // only ever grows to the right past absorbed members.
    size_t j = i;
    while (j < starts_.size()) {
        AddrRange cur(starts_[j], ends_[j]);
        if (!cur.touches(AddrRange(new_start, new_end)))
            break;
        new_start = std::min(new_start, cur.start);
        new_end = std::max(new_end, cur.end);
        absorbed += cur.bytes();
        ++j;
    }

    if (j == i) {
        // Nothing absorbed: open a slot at the insertion point.
        starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i),
                       new_start);
        ends_.insert(ends_.begin() + static_cast<std::ptrdiff_t>(i),
                     new_end);
    } else {
        // Reuse the first absorbed slot, drop the rest of the run.
        starts_[i] = new_start;
        ends_[i] = new_end;
        starts_.erase(starts_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      starts_.begin() + static_cast<std::ptrdiff_t>(j));
        ends_.erase(ends_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    ends_.begin() + static_cast<std::ptrdiff_t>(j));
    }

    uint64_t merged_bytes = AddrRange(new_start, new_end).bytes();
    nbytes += merged_bytes - absorbed;
    // Ranges are disjoint and non-adjacent, so a no-new-bytes insert
    // can only have absorbed exactly one identical-coverage range:
    // the set is unchanged iff no byte is newly covered.
    return merged_bytes > absorbed;
}

bool
RangeSet::remove(const AddrRange &r)
{
    if (!r.valid() || starts_.empty())
        return false;

    // First range that could overlap r: the predecessor of the upper
    // bound when it reaches r.start, else the upper bound itself.
    size_t i = firstAbove(r.start);
    if (i > 0 && ends_[i - 1] >= r.start)
        --i;

    // Collect the overlapped run [i, j). Every member with
    // start <= r.end from i on overlaps: the first by construction,
    // later ones because their starts lie in (r.start, r.end].
    size_t j = i;
    AddrRange left, right; // remainders (invalid = none)
    while (j < starts_.size() && starts_[j] <= r.end) {
        AddrRange cur(starts_[j], ends_[j]);
        if (!cur.overlaps(r))
            break; // i's candidate missed: nothing past it can hit
        nbytes -= cur.bytes();
        if (cur.start < r.start)
            left = AddrRange(cur.start, r.start - 1);
        if (cur.end > r.end)
            right = AddrRange(r.end + 1, cur.end);
        ++j;
    }
    if (j == i)
        return false;

    // Replace the run with the (at most two) remainders in place.
    Addr keep_s[2], keep_e[2];
    size_t kept = 0;
    if (left.valid()) {
        keep_s[kept] = left.start;
        keep_e[kept] = left.end;
        nbytes += left.bytes();
        ++kept;
    }
    if (right.valid()) {
        keep_s[kept] = right.start;
        keep_e[kept] = right.end;
        nbytes += right.bytes();
        ++kept;
    }
    const size_t run = j - i;
    size_t t = 0;
    for (; t < kept && t < run; ++t) {
        starts_[i + t] = keep_s[t];
        ends_[i + t] = keep_e[t];
    }
    if (t < kept) {
        // Split of a single range into two: one extra slot.
        starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(i + t),
                       keep_s[t]);
        ends_.insert(ends_.begin() + static_cast<std::ptrdiff_t>(i + t),
                     keep_e[t]);
    } else if (run > kept) {
        starts_.erase(
            starts_.begin() + static_cast<std::ptrdiff_t>(i + kept),
            starts_.begin() + static_cast<std::ptrdiff_t>(j));
        ends_.erase(ends_.begin() + static_cast<std::ptrdiff_t>(i + kept),
                    ends_.begin() + static_cast<std::ptrdiff_t>(j));
    }
    return true;
}

void
RangeSet::clear()
{
    starts_.clear();
    ends_.clear();
    nbytes = 0;
}

std::vector<AddrRange>
RangeSet::ranges() const
{
    std::vector<AddrRange> out;
    out.reserve(starts_.size());
    for (size_t i = 0; i < starts_.size(); ++i)
        out.emplace_back(starts_[i], ends_[i]);
    return out;
}

} // namespace pift::taint
