#include "taint/range_set.hh"

#include "support/logging.hh"

namespace pift::taint
{

bool
RangeSet::overlaps(const AddrRange &r) const
{
    if (!r.valid() || ranges_.empty())
        return false;
    // First range starting after r.start; its predecessor is the only
    // candidate that could contain r.start.
    auto it = ranges_.upper_bound(r.start);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= r.start)
            return true;
    }
    // Otherwise a range starting inside (r.start, r.end] overlaps.
    return it != ranges_.end() && it->first <= r.end;
}

bool
RangeSet::insert(const AddrRange &r)
{
    if (!r.valid())
        return false;

    Addr new_start = r.start;
    Addr new_end = r.end;
    uint64_t absorbed = 0;

    // Find the first range that could merge: the predecessor of the
    // insertion point if it overlaps or is adjacent, else the
    // insertion point itself.
    auto it = ranges_.upper_bound(new_start);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        Addr prev_end = prev->second;
        if (prev_end >= new_start ||
            (new_start > 0 && prev_end == new_start - 1)) {
            it = prev;
        }
    }

    // Absorb every range that overlaps or touches [new_start,new_end].
    while (it != ranges_.end()) {
        AddrRange cur(it->first, it->second);
        if (!cur.touches(AddrRange(new_start, new_end)))
            break;
        new_start = std::min(new_start, cur.start);
        new_end = std::max(new_end, cur.end);
        absorbed += cur.bytes();
        it = ranges_.erase(it);
    }

    ranges_.emplace(new_start, new_end);
    uint64_t merged_bytes = AddrRange(new_start, new_end).bytes();
    nbytes += merged_bytes - absorbed;
    // Ranges are disjoint and non-adjacent, so a no-new-bytes insert
    // can only have absorbed exactly one identical-coverage range:
    // the set is unchanged iff no byte is newly covered.
    return merged_bytes > absorbed;
}

bool
RangeSet::remove(const AddrRange &r)
{
    if (!r.valid() || ranges_.empty())
        return false;

    bool changed = false;

    auto it = ranges_.upper_bound(r.start);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= r.start)
            it = prev;
    }

    while (it != ranges_.end() && it->first <= r.end) {
        AddrRange cur(it->first, it->second);
        if (!cur.overlaps(r)) {
            ++it;
            continue;
        }
        changed = true;
        it = ranges_.erase(it);
        nbytes -= cur.bytes();
        // Keep the left remainder, if any.
        if (cur.start < r.start) {
            AddrRange left(cur.start, r.start - 1);
            ranges_.emplace(left.start, left.end);
            nbytes += left.bytes();
        }
        // Keep the right remainder, if any, and stop (nothing after
        // cur can overlap r if cur extended past r.end).
        if (cur.end > r.end) {
            AddrRange right(r.end + 1, cur.end);
            it = ranges_.emplace(right.start, right.end).first;
            nbytes += right.bytes();
            break;
        }
    }
    return changed;
}

void
RangeSet::clear()
{
    ranges_.clear();
    nbytes = 0;
}

std::vector<AddrRange>
RangeSet::ranges() const
{
    std::vector<AddrRange> out;
    out.reserve(ranges_.size());
    for (const auto &[s, e] : ranges_)
        out.emplace_back(s, e);
    return out;
}

} // namespace pift::taint
