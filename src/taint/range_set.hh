/**
 * @file
 * Disjoint set of tainted address ranges.
 *
 * This is the reference ("ideal", unbounded) taint store: a flat,
 * sorted structure-of-arrays of non-overlapping, non-adjacent
 * inclusive ranges with O(log n) overlap queries, insert-with-merge,
 * and remove-with-split. The PIFT hardware module models a bounded
 * cache of the same ranges; tests check the two agree when the cache
 * is large enough.
 *
 * Layout and search are tuned for the replay hot path (DESIGN.md
 * §12): the start and end addresses live in two dense vectors, so the
 * overlap query is a branchless (conditional-move) binary search over
 * a cache-line-friendly array instead of a pointer chase through map
 * nodes. Mutations shift vector tails, which for the range counts the
 * workloads produce (Figure 17 keeps distinct ranges below ~100) is
 * far cheaper than rebalancing a tree.
 *
 * Adjacent ranges are coalesced on insert, matching the paper's
 * arbitrary-length range entries (a string copy that stores 2 bytes at
 * a time must appear as one range, or the Figure 17 distinct-range
 * counts could not stay below 100).
 */

#ifndef PIFT_TAINT_RANGE_SET_HH
#define PIFT_TAINT_RANGE_SET_HH

#include <cstdint>
#include <vector>

#include "taint/addr_range.hh"

namespace pift::taint
{

/** Ordered, coalescing set of disjoint inclusive address ranges. */
class RangeSet
{
  public:
    /** True when @p r overlaps any member range. */
    bool
    overlaps(const AddrRange &r) const
    {
        if (!r.valid() || starts_.empty())
            return false;
        // First range starting after r.start; its predecessor is the
        // only candidate that could contain r.start.
        size_t i = firstAbove(r.start);
        if (i > 0 && ends_[i - 1] >= r.start)
            return true;
        return i < starts_.size() && starts_[i] <= r.end;
    }

    /** True when @p a lies inside a member range. */
    bool contains(Addr a) const { return overlaps(AddrRange(a, a)); }

    /**
     * Add @p r, merging with any overlapping or adjacent ranges.
     * @return true when the set changed (some byte was newly covered
     *         or ranges were restructured by the merge)
     */
    bool insert(const AddrRange &r);

    /**
     * Remove every byte of @p r, splitting member ranges as needed.
     * @return true when the set changed
     */
    bool remove(const AddrRange &r);

    void clear();

    /** Number of disjoint ranges currently held. */
    size_t rangeCount() const { return starts_.size(); }

    /** Total bytes covered (maintained incrementally; O(1)). */
    uint64_t bytes() const { return nbytes; }

    bool empty() const { return starts_.empty(); }

    /** Snapshot of the ranges in ascending order. */
    std::vector<AddrRange> ranges() const;

  private:
    /**
     * Index of the first range whose start is > @p key (upper bound),
     * as a branchless binary search: each halving step narrows the
     * candidate window with a conditional move instead of a taken/not-
     * taken branch, so random probe addresses cannot cause mispredict
     * stalls. Exactness is pinned against std::upper_bound by the
     * randomized differential in test_taint.cc.
     */
    size_t
    firstAbove(Addr key) const
    {
        const Addr *v = starts_.data();
        size_t lo = 0;
        size_t n = starts_.size();
        while (n > 1) {
            const size_t half = n >> 1;
            lo += v[lo + half - 1] <= key ? half : 0; // cmov, not jcc
            n -= half;
        }
        return lo + (n == 1 && v[lo] <= key ? 1 : 0);
    }

    // Parallel arrays: starts_[i]/ends_[i] form one inclusive range;
    // invariants: sorted by start, disjoint, non-adjacent.
    std::vector<Addr> starts_;
    std::vector<Addr> ends_;
    uint64_t nbytes = 0;
};

} // namespace pift::taint

#endif // PIFT_TAINT_RANGE_SET_HH
