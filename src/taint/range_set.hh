/**
 * @file
 * Disjoint set of tainted address ranges.
 *
 * This is the reference ("ideal", unbounded) taint store: an ordered
 * map of non-overlapping, non-adjacent inclusive ranges with O(log n)
 * overlap queries, insert-with-merge, and remove-with-split. The PIFT
 * hardware module models a bounded cache of the same ranges; tests
 * check the two agree when the cache is large enough.
 *
 * Adjacent ranges are coalesced on insert, matching the paper's
 * arbitrary-length range entries (a string copy that stores 2 bytes at
 * a time must appear as one range, or the Figure 17 distinct-range
 * counts could not stay below 100).
 */

#ifndef PIFT_TAINT_RANGE_SET_HH
#define PIFT_TAINT_RANGE_SET_HH

#include <cstdint>
#include <map>
#include <vector>

#include "taint/addr_range.hh"

namespace pift::taint
{

/** Ordered, coalescing set of disjoint inclusive address ranges. */
class RangeSet
{
  public:
    /** True when @p r overlaps any member range. */
    bool overlaps(const AddrRange &r) const;

    /** True when @p a lies inside a member range. */
    bool contains(Addr a) const { return overlaps(AddrRange(a, a)); }

    /**
     * Add @p r, merging with any overlapping or adjacent ranges.
     * @return true when the set changed (some byte was newly covered
     *         or ranges were restructured by the merge)
     */
    bool insert(const AddrRange &r);

    /**
     * Remove every byte of @p r, splitting member ranges as needed.
     * @return true when the set changed
     */
    bool remove(const AddrRange &r);

    void clear();

    /** Number of disjoint ranges currently held. */
    size_t rangeCount() const { return ranges_.size(); }

    /** Total bytes covered (maintained incrementally; O(1)). */
    uint64_t bytes() const { return nbytes; }

    bool empty() const { return ranges_.empty(); }

    /** Snapshot of the ranges in ascending order. */
    std::vector<AddrRange> ranges() const;

  private:
    // start -> end (inclusive); invariants: disjoint, non-adjacent.
    std::map<Addr, Addr> ranges_;
    uint64_t nbytes = 0;
};

} // namespace pift::taint

#endif // PIFT_TAINT_RANGE_SET_HH
