#include "telemetry/export.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace pift::telemetry
{

namespace
{

const char *
kindTag(Kind kind)
{
    switch (kind) {
      case Kind::Counter:   return "counter";
      case Kind::Gauge:     return "gauge";
      case Kind::Histogram: return "histogram";
    }
    return "?";
}

/** Chrome "ph" letter for one event. */
char
phaseTag(TraceEvent::Phase ph)
{
    switch (ph) {
      case TraceEvent::Phase::Begin:   return 'B';
      case TraceEvent::Phase::End:     return 'E';
      case TraceEvent::Phase::Instant: return 'i';
      case TraceEvent::Phase::Counter: return 'C';
    }
    return '?';
}

void
writeEventObject(std::ostream &os, const TraceEvent &ev)
{
    // The simulator is single-threaded; pid/tid are fixed so every
    // span lands on one timeline row.
    os << "{\"ph\":\"" << phaseTag(ev.ph) << "\"";
    switch (ev.ph) {
      case TraceEvent::Phase::Begin:
        os << ",\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
           << jsonEscape(ev.cat) << "\"";
        break;
      case TraceEvent::Phase::End:
        break;
      case TraceEvent::Phase::Instant:
        os << ",\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
           << jsonEscape(ev.cat) << "\",\"s\":\"t\"";
        break;
      case TraceEvent::Phase::Counter:
        os << ",\"name\":\"" << jsonEscape(ev.name)
           << "\",\"args\":{\"value\":" << ev.value << "}";
        break;
    }
    os << ",\"ts\":" << ev.ts_us << ",\"pid\":1,\"tid\":1}";
}

std::string
saveEvents(const std::string &path, bool chrome)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return "cannot open '" + path + "' for writing";
    auto events = tracer().events();
    if (chrome)
        writeChromeTrace(os, events);
    else
        writeJsonl(os, events);
    os.flush();
    if (!os)
        return "short write to '" + path + "'";
    return "";
}

} // anonymous namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        writeEventObject(os, ev);
    }
    os << "\n]}\n";
}

void
writeJsonl(std::ostream &os, const std::vector<TraceEvent> &events)
{
    for (const TraceEvent &ev : events) {
        writeEventObject(os, ev);
        os << "\n";
    }
}

void
writeMetricsJson(std::ostream &os,
                 const std::vector<InstrumentSnap> &snaps, int indent)
{
    std::string pad(static_cast<size_t>(indent), ' ');
    os << "[";
    bool first = true;
    for (const InstrumentSnap &snap : snaps) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad << "  {\"name\":\"" << jsonEscape(snap.name)
           << "\",\"kind\":\"" << kindTag(snap.kind) << "\"";
        switch (snap.kind) {
          case Kind::Counter:
            os << ",\"value\":" << snap.value;
            break;
          case Kind::Gauge:
            os << ",\"value\":" << snap.gauge_value
               << ",\"peak\":" << snap.gauge_peak;
            break;
          case Kind::Histogram:
            os << ",\"count\":" << snap.count << ",\"sum\":"
               << snap.sum << ",\"buckets\":[";
            for (size_t i = 0; i < snap.buckets.size(); ++i) {
                if (i)
                    os << ",";
                os << "{\"le\":";
                if (snap.buckets[i].le == bucket_overflow)
                    os << "\"+inf\"";
                else
                    os << snap.buckets[i].le;
                os << ",\"count\":" << snap.buckets[i].count << "}";
            }
            os << "],\"p50\":" << snap.p50 << ",\"p95\":" << snap.p95
               << ",\"p99\":" << snap.p99;
            break;
        }
        os << "}";
    }
    if (!first)
        os << "\n" << pad;
    os << "]";
}

std::string
saveChromeTrace(const std::string &path)
{
    return saveEvents(path, true);
}

std::string
saveJsonl(const std::string &path)
{
    return saveEvents(path, false);
}

} // namespace pift::telemetry
