/**
 * @file
 * Telemetry exporters, in the sim/trace_io mold: stream writers plus
 * file-path helpers that report failure instead of aborting. Three
 * formats:
 *
 *  - Chrome `about:tracing` JSON ({"traceEvents":[...]}): load it at
 *    chrome://tracing or https://ui.perfetto.dev. Spans become B/E
 *    duration events, markers become instants, metric samples become
 *    counter events.
 *  - JSONL: one event object per line, for grep/jq pipelines.
 *  - Metrics JSON: the registry snapshot as a JSON array (embedded in
 *    BENCH_telemetry.json by telemetry/report).
 *
 * All writers are valid with an empty tracer/registry, so a
 * PIFT_TELEMETRY=OFF build still produces loadable (empty) files.
 */

#ifndef PIFT_TELEMETRY_EXPORT_HH
#define PIFT_TELEMETRY_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/registry.hh"
#include "telemetry/span.hh"

namespace pift::telemetry
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Write @p events as a Chrome about:tracing JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

/** Write @p events as JSONL, one event object per line. */
void writeJsonl(std::ostream &os,
                const std::vector<TraceEvent> &events);

/** Write a registry snapshot as a JSON array of instruments. */
void writeMetricsJson(std::ostream &os,
                      const std::vector<InstrumentSnap> &snaps,
                      int indent = 0);

/**
 * Save the process tracer's stream as a Chrome trace file.
 * @return empty string on success, else the error message
 */
std::string saveChromeTrace(const std::string &path);

/** Save the process tracer's stream as JSONL (see saveChromeTrace). */
std::string saveJsonl(const std::string &path);

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_EXPORT_HH
