#include "telemetry/registry.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pift::telemetry
{

std::vector<uint64_t>
exponentialBounds(uint64_t first, double factor, size_t n)
{
    assert(first > 0 && factor > 1.0);
    std::vector<uint64_t> bounds;
    bounds.reserve(n);
    double b = static_cast<double>(first);
    for (size_t i = 0; i < n; ++i) {
        uint64_t bound = static_cast<uint64_t>(std::llround(b));
        if (!bounds.empty() && bound <= bounds.back())
            bound = bounds.back() + 1;
        bounds.push_back(bound);
        b *= factor;
    }
    return bounds;
}

double
histogramQuantile(const std::vector<BucketSnap> &buckets,
                  uint64_t count, double q)
{
    if (count == 0 || buckets.empty())
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double rank = q * static_cast<double>(count);
    uint64_t cum = 0;
    uint64_t lo = 0; // lower edge of the current bucket
    for (const BucketSnap &b : buckets) {
        const uint64_t prev = cum;
        cum += b.count;
        if (static_cast<double>(cum) < rank) {
            if (b.le != bucket_overflow)
                lo = b.le;
            continue;
        }
        if (b.le == bucket_overflow) {
            // No upper edge to interpolate toward: clamp to the last
            // finite bound (== this bucket's lower edge).
            return static_cast<double>(lo);
        }
        if (b.count == 0)
            return static_cast<double>(b.le);
        const double frac =
            (rank - static_cast<double>(prev)) /
            static_cast<double>(b.count);
        return static_cast<double>(lo) +
            frac * static_cast<double>(b.le - lo);
    }
    return static_cast<double>(lo);
}

} // namespace pift::telemetry

#if defined(PIFT_TELEMETRY_ENABLED)

#include <map>
#include <mutex>

namespace pift::telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{true};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bnd(std::move(bounds)),
      buckets(new std::atomic<uint64_t>[bnd.size() + 1])
{
    assert(std::is_sorted(bnd.begin(), bnd.end()) &&
           std::adjacent_find(bnd.begin(), bnd.end()) == bnd.end());
    for (size_t i = 0; i <= bnd.size(); ++i)
        buckets[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(uint64_t v)
{
    if (!detail::collecting())
        return;
    // First bound >= v; past-the-end selects the overflow bucket.
    size_t idx = static_cast<size_t>(
        std::lower_bound(bnd.begin(), bnd.end(), v) - bnd.begin());
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
    cnt.fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(v, std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    assert(i <= bnd.size());
    return buckets[i].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bnd.size(); ++i)
        buckets[i].store(0, std::memory_order_relaxed);
    cnt.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
}

namespace
{

/** One registered instrument; exactly one pointer is non-null. */
struct Slot
{
    Kind kind = Kind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

// std::map keeps snapshots name-sorted for free, which is what makes
// them byte-deterministic across runs.
using SlotMap = std::map<std::string, Slot>;

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

SlotMap &
slots()
{
    static SlotMap map;
    return map;
}

} // anonymous namespace

Counter &
counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    Slot &slot = slots()[name];
    if (!slot.counter) {
        assert(!slot.gauge && !slot.histogram &&
               "instrument kind collision");
        slot.kind = Kind::Counter;
        slot.counter = std::make_unique<Counter>();
    }
    return *slot.counter;
}

Gauge &
gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    Slot &slot = slots()[name];
    if (!slot.gauge) {
        assert(!slot.counter && !slot.histogram &&
               "instrument kind collision");
        slot.kind = Kind::Gauge;
        slot.gauge = std::make_unique<Gauge>();
    }
    return *slot.gauge;
}

Histogram &
histogram(const std::string &name, std::vector<uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    Slot &slot = slots()[name];
    if (!slot.histogram) {
        assert(!slot.counter && !slot.gauge &&
               "instrument kind collision");
        slot.kind = Kind::Histogram;
        slot.histogram =
            std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot.histogram;
}

std::vector<InstrumentSnap>
snapshot()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<InstrumentSnap> out;
    out.reserve(slots().size());
    for (const auto &[name, slot] : slots()) {
        InstrumentSnap snap;
        snap.name = name;
        snap.kind = slot.kind;
        switch (slot.kind) {
          case Kind::Counter:
            snap.value = slot.counter->value();
            break;
          case Kind::Gauge:
            snap.gauge_value = slot.gauge->value();
            snap.gauge_peak = slot.gauge->peak();
            break;
          case Kind::Histogram: {
            const Histogram &h = *slot.histogram;
            snap.count = h.count();
            snap.sum = h.sum();
            snap.buckets.reserve(h.bounds().size() + 1);
            for (size_t i = 0; i < h.bounds().size(); ++i)
                snap.buckets.push_back(
                    {h.bounds()[i], h.bucketCount(i)});
            snap.buckets.push_back(
                {bucket_overflow, h.bucketCount(h.bounds().size())});
            snap.p50 = histogramQuantile(snap.buckets, snap.count,
                                         0.50);
            snap.p95 = histogramQuantile(snap.buckets, snap.count,
                                         0.95);
            snap.p99 = histogramQuantile(snap.buckets, snap.count,
                                         0.99);
            break;
          }
        }
        out.push_back(std::move(snap));
    }
    return out;
}

void
resetAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (auto &[name, slot] : slots()) {
        (void)name;
        if (slot.counter)
            slot.counter->reset();
        if (slot.gauge)
            slot.gauge->reset();
        if (slot.histogram)
            slot.histogram->reset();
    }
}

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_ENABLED
