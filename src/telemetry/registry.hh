/**
 * @file
 * The telemetry metrics registry (DESIGN.md §9).
 *
 * Named instruments — monotonic counters, gauges, and fixed-bucket
 * histograms — shared process-wide through a registry keyed by dotted
 * names (`layer.component.event`, e.g. `core.storage.inserts`). Call
 * sites resolve an instrument once (a mutex-guarded map lookup) and
 * then update it lock-free: every hot-path mutation is a single
 * relaxed atomic RMW behind a relaxed enabled-flag load.
 *
 * Two off switches, two costs:
 *  - `setEnabled(false)` gates collection at runtime (one predictable
 *    branch per update) — bench_telemetry_overhead uses it to measure
 *    the enabled/disabled delta inside one binary;
 *  - building with `-DPIFT_TELEMETRY=OFF` removes the subsystem
 *    entirely: this header swaps in inline empty stubs with the same
 *    API, so instrumented code compiles unchanged and the optimizer
 *    deletes every call.
 *
 * Snapshots are deterministic: instruments are reported sorted by
 * name, and counter values under a fixed workload are exact (the
 * simulator is single-threaded; atomics exist so background threads
 * may observe safely).
 */

#ifndef PIFT_TELEMETRY_REGISTRY_HH
#define PIFT_TELEMETRY_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#if defined(PIFT_TELEMETRY_ENABLED)
#include <atomic>
#include <memory>
#endif

namespace pift::telemetry
{

/** Instrument kinds held by the registry. */
enum class Kind : uint8_t { Counter, Gauge, Histogram };

/** One histogram bucket in a snapshot: count of values <= le. */
struct BucketSnap
{
    uint64_t le = 0;    //!< inclusive upper bound (~0 = overflow)
    uint64_t count = 0; //!< observations in this bucket
};

/** Point-in-time view of one instrument. */
struct InstrumentSnap
{
    std::string name;
    Kind kind = Kind::Counter;
    uint64_t value = 0;      //!< counter total
    int64_t gauge_value = 0; //!< gauge current value
    int64_t gauge_peak = 0;  //!< gauge high-water mark
    uint64_t count = 0;      //!< histogram observation count
    uint64_t sum = 0;        //!< histogram sum of observations
    std::vector<BucketSnap> buckets;

    /**
     * Histogram quantiles interpolated from the fixed bucket bounds
     * (see histogramQuantile()); 0 for non-histograms and empty
     * histograms.
     */
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Sentinel `le` of the histogram overflow bucket. */
inline constexpr uint64_t bucket_overflow = ~uint64_t(0);

/**
 * Geometric bucket bounds: {first, first*factor, ...}, @p n bounds,
 * rounded up so bounds strictly increase. The implicit overflow
 * bucket catches everything larger.
 */
std::vector<uint64_t> exponentialBounds(uint64_t first, double factor,
                                        size_t n);

/**
 * Estimate quantile @p q (in [0,1]) from snapshot @p buckets holding
 * @p count observations total: find the bucket containing the target
 * rank and interpolate linearly between its bounds (the classic
 * fixed-bucket estimator — exact at bucket edges, linear inside).
 * Ranks landing in the overflow bucket clamp to the last finite
 * bound, since the bucket has no upper edge to interpolate toward.
 * Returns 0 when the histogram is empty. Pure snapshot arithmetic,
 * so it works identically in PIFT_TELEMETRY=OFF builds.
 */
double histogramQuantile(const std::vector<BucketSnap> &buckets,
                         uint64_t count, double q);

#if defined(PIFT_TELEMETRY_ENABLED)

namespace detail
{
/** Process-wide runtime collection gate. */
extern std::atomic<bool> g_enabled;

inline bool
collecting()
{
    return g_enabled.load(std::memory_order_relaxed);
}
} // namespace detail

/** True when updates are currently being collected. */
inline bool
enabled()
{
    return detail::collecting();
}

/** Gate collection at runtime (spans and instruments both obey). */
void setEnabled(bool on);

/** True when the subsystem is compiled in (PIFT_TELEMETRY=ON). */
inline constexpr bool
compiledIn()
{
    return true;
}

/** Monotonic event counter. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        if (detail::collecting())
            val.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return val.load(std::memory_order_relaxed); }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val{0};
};

/** Instantaneous level with a high-water mark. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        if (!detail::collecting())
            return;
        val.store(v, std::memory_order_relaxed);
        raisePeak(v);
    }

    void
    add(int64_t d)
    {
        if (!detail::collecting())
            return;
        int64_t now = val.fetch_add(d, std::memory_order_relaxed) + d;
        raisePeak(now);
    }

    int64_t value() const { return val.load(std::memory_order_relaxed); }
    int64_t peak() const { return pk.load(std::memory_order_relaxed); }

    void
    reset()
    {
        val.store(0, std::memory_order_relaxed);
        pk.store(0, std::memory_order_relaxed);
    }

  private:
    void
    raisePeak(int64_t v)
    {
        int64_t cur = pk.load(std::memory_order_relaxed);
        while (v > cur &&
               !pk.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
        }
    }

    std::atomic<int64_t> val{0};
    std::atomic<int64_t> pk{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * bounds[i-1] < v <= bounds[i]; one extra overflow bucket catches
 * v > bounds.back(). Bounds are fixed at registration — the hot path
 * is a branchless-ish binary search plus three relaxed RMWs.
 */
class Histogram
{
  public:
    /** @param bounds strictly increasing inclusive upper bounds. */
    explicit Histogram(std::vector<uint64_t> bounds);

    void observe(uint64_t v);

    const std::vector<uint64_t> &bounds() const { return bnd; }

    /** Count in bucket @p i; i == bounds().size() is overflow. */
    uint64_t bucketCount(size_t i) const;

    uint64_t count() const { return cnt.load(std::memory_order_relaxed); }
    uint64_t sum() const { return total.load(std::memory_order_relaxed); }

    void reset();

  private:
    std::vector<uint64_t> bnd;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> cnt{0};
    std::atomic<uint64_t> total{0};
};

/**
 * Resolve (registering on first use) the counter named @p name.
 * The reference stays valid for the process lifetime; resolve once
 * and cache it at hot call sites. Asserts on kind collisions.
 */
Counter &counter(const std::string &name);

/** Resolve the gauge named @p name (see counter()). */
Gauge &gauge(const std::string &name);

/**
 * Resolve the histogram named @p name. @p bounds is used on first
 * registration only; later calls may pass {}.
 */
Histogram &histogram(const std::string &name,
                     std::vector<uint64_t> bounds = {});

/** Deterministic snapshot of every instrument, sorted by name. */
std::vector<InstrumentSnap> snapshot();

/** Zero every instrument (bench phases, test isolation). */
void resetAll();

#else // !PIFT_TELEMETRY_ENABLED — inline no-op stubs, same API.

inline bool enabled() { return false; }
inline void setEnabled(bool) {}

inline constexpr bool
compiledIn()
{
    return false;
}

class Counter
{
  public:
    void inc(uint64_t = 1) {}
    uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    void set(int64_t) {}
    void add(int64_t) {}
    int64_t value() const { return 0; }
    int64_t peak() const { return 0; }
    void reset() {}
};

class Histogram
{
  public:
    void observe(uint64_t) {}
    const std::vector<uint64_t> &
    bounds() const
    {
        static const std::vector<uint64_t> none;
        return none;
    }
    uint64_t bucketCount(size_t) const { return 0; }
    uint64_t count() const { return 0; }
    uint64_t sum() const { return 0; }
    void reset() {}
};

inline Counter &
counter(const std::string &)
{
    static Counter dummy;
    return dummy;
}

inline Gauge &
gauge(const std::string &)
{
    static Gauge dummy;
    return dummy;
}

inline Histogram &
histogram(const std::string &, std::vector<uint64_t> = {})
{
    static Histogram dummy;
    return dummy;
}

inline std::vector<InstrumentSnap>
snapshot()
{
    return {};
}

inline void resetAll() {}

#endif // PIFT_TELEMETRY_ENABLED

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_REGISTRY_HH
