#include "telemetry/report.hh"

#include <fstream>
#include <ostream>

#include "telemetry/export.hh"
#include "telemetry/span.hh"

namespace pift::telemetry
{

void
writeBenchReport(std::ostream &os, const BenchReport &report)
{
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(report.bench) << "\",\n";
    os << "  \"telemetry_compiled\": "
       << (compiledIn() ? "true" : "false") << ",\n";
    os << "  \"apps\": " << report.apps << ",\n";
    os << "  \"repetitions\": " << report.repetitions << ",\n";
    os << "  \"records_replayed\": " << report.records_replayed
       << ",\n";
    os << "  \"wall_ms\": " << report.wall_ms << ",\n";
    os << "  \"events_per_sec\": " << report.events_per_sec << ",\n";
    os << "  \"wall_ms_disabled\": " << report.wall_ms_disabled
       << ",\n";
    os << "  \"overhead_pct\": " << report.overhead_pct << ",\n";
    os << "  \"spans\": {\"recorded\": " << tracer().events().size()
       << ", \"dropped\": " << tracer().dropped() << "},\n";
    os << "  \"instruments\": ";
    writeMetricsJson(os, snapshot(), 2);
    os << "\n}\n";
}

std::string
saveBenchReport(const std::string &path, const BenchReport &report)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return "cannot open '" + path + "' for writing";
    writeBenchReport(os, report);
    os.flush();
    if (!os)
        return "short write to '" + path + "'";
    return "";
}

} // namespace pift::telemetry
