/**
 * @file
 * The structured bench report (`BENCH_telemetry.json`).
 *
 * One JSON document per instrumented run: wall time, replay
 * throughput, the telemetry-on vs telemetry-off comparison when the
 * producer measured one, and the full registry snapshot. The shape is
 * frozen by schemas/bench_telemetry.schema.json (validated in CI by
 * tools/validate_telemetry.py) so successive PRs can diff
 * perf-trajectory numbers mechanically.
 */

#ifndef PIFT_TELEMETRY_REPORT_HH
#define PIFT_TELEMETRY_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "telemetry/registry.hh"

namespace pift::telemetry
{

/** Headline numbers of one instrumented run. */
struct BenchReport
{
    std::string bench;             //!< producing binary/subcommand
    uint64_t apps = 0;             //!< registry apps replayed
    uint64_t repetitions = 1;      //!< replay repetitions timed
    uint64_t records_replayed = 0; //!< total trace records consumed
    double wall_ms = 0.0;          //!< wall time, telemetry enabled
    double events_per_sec = 0.0;   //!< records_replayed / wall time
    /** Wall time with collection disabled; < 0 = not measured. */
    double wall_ms_disabled = -1.0;
    /** Enabled-vs-disabled overhead in percent; < 0 = not measured. */
    double overhead_pct = -1.0;
};

/**
 * Write @p report plus the current registry snapshot and tracer
 * fill state as the BENCH_telemetry.json document.
 */
void writeBenchReport(std::ostream &os, const BenchReport &report);

/**
 * Save the report to @p path.
 * @return empty string on success, else the error message
 */
std::string saveBenchReport(const std::string &path,
                            const BenchReport &report);

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_REPORT_HH
