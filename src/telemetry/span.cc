#include "telemetry/span.hh"

#if defined(PIFT_TELEMETRY_ENABLED)

#include <chrono>
#include <mutex>

namespace pift::telemetry
{

namespace
{

/** Single guarded event buffer behind the Tracer facade. */
struct TracerState
{
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    size_t cap = 1u << 20;
    uint64_t dropped = 0;
    int depth = 0;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    uint64_t
    nowUs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
};

TracerState &
state()
{
    static TracerState s;
    return s;
}

} // anonymous namespace

bool
Tracer::begin(const std::string &name, const char *cat)
{
    if (!detail::collecting())
        return false;
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    // An End needs a slot too; keep one in reserve per open span so a
    // Begin we accept can always be closed.
    if (s.events.size() + static_cast<size_t>(s.depth) + 1 >= s.cap) {
        ++s.dropped;
        return false;
    }
    s.events.push_back(
        {TraceEvent::Phase::Begin, name, cat, s.nowUs(), 0.0});
    ++s.depth;
    return true;
}

void
Tracer::end()
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.depth <= 0)
        return;
    --s.depth;
    s.events.push_back(
        {TraceEvent::Phase::End, "", "", s.nowUs(), 0.0});
}

void
Tracer::instant(const std::string &name, const char *cat)
{
    if (!detail::collecting())
        return;
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.events.size() + static_cast<size_t>(s.depth) >= s.cap) {
        ++s.dropped;
        return;
    }
    s.events.push_back(
        {TraceEvent::Phase::Instant, name, cat, s.nowUs(), 0.0});
}

void
Tracer::counterSample(const std::string &name, double value)
{
    if (!detail::collecting())
        return;
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.events.size() + static_cast<size_t>(s.depth) >= s.cap) {
        ++s.dropped;
        return;
    }
    s.events.push_back({TraceEvent::Phase::Counter, name, "metric",
                        s.nowUs(), value});
}

std::vector<TraceEvent>
Tracer::events() const
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.events;
}

uint64_t
Tracer::dropped() const
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.dropped;
}

int
Tracer::depth() const
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.depth;
}

void
Tracer::clear()
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
    s.dropped = 0;
    s.depth = 0;
    s.t0 = std::chrono::steady_clock::now();
}

void
Tracer::setCapacity(size_t cap)
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.cap = cap;
}

size_t
Tracer::capacity() const
{
    TracerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.cap;
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

void
sampleRegistryToTracer()
{
    for (const InstrumentSnap &snap : snapshot()) {
        double v = 0.0;
        switch (snap.kind) {
          case Kind::Counter:
            v = static_cast<double>(snap.value);
            break;
          case Kind::Gauge:
            v = static_cast<double>(snap.gauge_value);
            break;
          case Kind::Histogram:
            v = static_cast<double>(snap.count);
            break;
        }
        tracer().counterSample(snap.name, v);
    }
}

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_ENABLED
