/**
 * @file
 * The tracing layer: RAII spans over a process-wide event tracer.
 *
 * A Span brackets a unit of work (one tainting window, one app
 * replay, one bench phase) with Begin/End events; Chrome's
 * about:tracing reconstructs the nesting from stream order, so span
 * structure is deterministic even though timestamps are wall-clock.
 * The tracer also records Instant events (one-off markers) and
 * Counter samples (instrument name → value at a point in time), which
 * is how metrics snapshots become visible on the trace timeline.
 *
 * The event buffer is bounded: past the capacity, events are counted
 * as dropped instead of accumulating without limit. A Begin that is
 * dropped suppresses its matching End so exported traces stay
 * well-nested.
 *
 * With PIFT_TELEMETRY=OFF the whole layer collapses to empty inline
 * stubs (a Span is an empty object the optimizer deletes).
 */

#ifndef PIFT_TELEMETRY_SPAN_HH
#define PIFT_TELEMETRY_SPAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hh"

namespace pift::telemetry
{

/** One entry in the tracer's event stream. */
struct TraceEvent
{
    enum class Phase : uint8_t { Begin, End, Instant, Counter };

    Phase ph = Phase::Instant;
    std::string name;
    std::string cat;        //!< Chrome trace category
    uint64_t ts_us = 0;     //!< microseconds since tracer start
    double value = 0.0;     //!< Counter events: sampled value
};

#if defined(PIFT_TELEMETRY_ENABLED)

/** Process-wide bounded collector of trace events. */
class Tracer
{
  public:
    /**
     * Append a Begin event. @return false when the event was dropped
     * (collection disabled or buffer full) — the caller must then
     * skip the matching end().
     */
    bool begin(const std::string &name, const char *cat);

    /** Append the End event for the innermost open begin(). */
    void end();

    /** Append a one-off marker event. */
    void instant(const std::string &name, const char *cat);

    /** Append a Counter sample (instrument value at this moment). */
    void counterSample(const std::string &name, double value);

    /** Copy of the event stream so far (in record order). */
    std::vector<TraceEvent> events() const;

    /** Events rejected because the buffer was full. */
    uint64_t dropped() const;

    /** Current nesting depth of open spans. */
    int depth() const;

    /** Drop all recorded events and reset the dropped counter. */
    void clear();

    /** Resize the buffer bound (existing events are kept). */
    void setCapacity(size_t cap);

    size_t capacity() const;
};

/** The process-wide tracer. */
Tracer &tracer();

/**
 * Snapshot every registry instrument into Counter events on the
 * tracer, making the current metric values part of the trace.
 */
void sampleRegistryToTracer();

/** RAII Begin/End pair on the process tracer. */
class Span
{
  public:
    explicit Span(const std::string &name, const char *cat = "pift")
        : armed(tracer().begin(name, cat))
    {
    }

    ~Span()
    {
        if (armed)
            tracer().end();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool armed;
};

#else // !PIFT_TELEMETRY_ENABLED

class Tracer
{
  public:
    bool begin(const std::string &, const char *) { return false; }
    void end() {}
    void instant(const std::string &, const char *) {}
    void counterSample(const std::string &, double) {}
    std::vector<TraceEvent> events() const { return {}; }
    uint64_t dropped() const { return 0; }
    int depth() const { return 0; }
    void clear() {}
    void setCapacity(size_t) {}
    size_t capacity() const { return 0; }
};

inline Tracer &
tracer()
{
    static Tracer dummy;
    return dummy;
}

inline void sampleRegistryToTracer() {}

class Span
{
  public:
    explicit Span(const std::string &, const char * = "pift") {}
    ~Span() {}
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
};

#endif // PIFT_TELEMETRY_ENABLED

} // namespace pift::telemetry

#endif // PIFT_TELEMETRY_SPAN_HH
