/**
 * @file
 * Umbrella header for the telemetry subsystem (DESIGN.md §9).
 *
 * Instrument naming convention: `layer.component.event`, lower-case,
 * dot-separated, where `layer` matches the src/ subdirectory that
 * owns the call site (core, runtime, faults, android, droidbench,
 * support, ...). Counters end in a plural noun (`...inserts`), gauges
 * name a level (`...bytes`), histograms name the sampled quantity
 * (`...replay_us`).
 */

#ifndef PIFT_TELEMETRY_TELEMETRY_HH
#define PIFT_TELEMETRY_TELEMETRY_HH

#include "telemetry/export.hh"
#include "telemetry/registry.hh"
#include "telemetry/report.hh"
#include "telemetry/span.hh"

#endif // PIFT_TELEMETRY_TELEMETRY_HH
