/**
 * @file
 * Property test: the production PiftTracker against a literal,
 * byte-granular transcription of Algorithm 1 from the paper, driven
 * by random event streams. Any divergence in taint state or sink
 * verdicts fails with the step number.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "support/rng.hh"

using namespace pift;
using taint::AddrRange;

namespace
{

/**
 * Direct transcription of Algorithm 1 (lines 8-24): R as a set of
 * tainted byte addresses per process, LTLT and n_t per process.
 */
class ReferenceAlgorithm
{
  public:
    ReferenceAlgorithm(unsigned ni, unsigned nt, bool untaint)
        : NI(ni), NT(nt), untaint_enabled(untaint)
    {}

    void
    onLoad(ProcId pid, SeqNum k, AddrRange rl)
    {
        if (overlaps(pid, rl)) {
            ltlt[pid] = k;
            has_ltlt.insert(pid);
            nt_used[pid] = 0;
        }
    }

    void
    onStore(ProcId pid, SeqNum k, AddrRange rs)
    {
        bool in_window = has_ltlt.count(pid) &&
            k <= ltlt[pid] + NI;
        if (in_window && nt_used[pid] < NT) {
            for (Addr a = rs.start; a <= rs.end; ++a) {
                bytes[pid].insert(a);
                if (a == rs.end)
                    break;
            }
            ++nt_used[pid];
        } else if (untaint_enabled) {
            for (Addr a = rs.start; a <= rs.end; ++a) {
                bytes[pid].erase(a);
                if (a == rs.end)
                    break;
            }
        }
    }

    void
    taint(ProcId pid, AddrRange r)
    {
        for (Addr a = r.start; a <= r.end; ++a) {
            bytes[pid].insert(a);
            if (a == r.end)
                break;
        }
    }

    bool
    overlaps(ProcId pid, AddrRange r) const
    {
        auto it = bytes.find(pid);
        if (it == bytes.end())
            return false;
        auto lo = it->second.lower_bound(r.start);
        return lo != it->second.end() && *lo <= r.end;
    }

    uint64_t
    taintedBytes() const
    {
        uint64_t n = 0;
        for (const auto &[pid, set] : bytes)
            n += set.size();
        return n;
    }

  private:
    unsigned NI;
    unsigned NT;
    bool untaint_enabled;
    std::map<ProcId, std::set<Addr>> bytes;
    std::map<ProcId, SeqNum> ltlt;
    std::set<ProcId> has_ltlt;
    std::map<ProcId, unsigned> nt_used;
};

struct SweepParams
{
    uint64_t seed;
    unsigned ni;
    unsigned nt;
    bool untaint;
};

class AlgorithmEquivalence
    : public ::testing::TestWithParam<SweepParams>
{};

} // namespace

TEST_P(AlgorithmEquivalence, TrackerMatchesPaperTranscription)
{
    const SweepParams &sp = GetParam();
    Rng rng(sp.seed);

    core::IdealRangeStore store;
    core::PiftTracker tracker({sp.ni, sp.nt, sp.untaint}, store);
    ReferenceAlgorithm ref(sp.ni, sp.nt, sp.untaint);

    std::map<ProcId, SeqNum> counters;
    auto range = [&rng]() {
        Addr start = 0x1000 + static_cast<Addr>(rng.below(200));
        Addr len = 1 + static_cast<Addr>(rng.below(8));
        return AddrRange::fromSize(start, len);
    };

    // Seed taint: a couple of source registrations.
    for (int i = 0; i < 2; ++i) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(2));
        AddrRange r = range();
        sim::ControlEvent ev;
        ev.pid = pid;
        ev.kind = sim::ControlKind::RegisterSource;
        ev.start = r.start;
        ev.end = r.end;
        tracker.onControl(ev);
        ref.taint(pid, r);
    }

    for (int step = 0; step < 4000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(2));
        SeqNum k = counters[pid]++;
        sim::TraceRecord rec;
        rec.pid = pid;
        rec.local_seq = k;
        switch (rng.below(4)) {
          case 0: {
            AddrRange r = range();
            rec.op = isa::Op::Ldr;
            rec.mem_kind = sim::MemKind::Load;
            rec.mem_start = r.start;
            rec.mem_end = r.end;
            ref.onLoad(pid, k, r);
            break;
          }
          case 1: {
            AddrRange r = range();
            rec.op = isa::Op::Str;
            rec.mem_kind = sim::MemKind::Store;
            rec.mem_start = r.start;
            rec.mem_end = r.end;
            ref.onStore(pid, k, r);
            break;
          }
          default:
            rec.op = isa::Op::Add;
            break;
        }
        tracker.onRecord(rec);

        if (step % 97 == 0) {
            AddrRange q = range();
            ASSERT_EQ(store.query(pid, q), ref.overlaps(pid, q))
                << "seed " << sp.seed << " step " << step;
        }
        ASSERT_EQ(store.bytes(), ref.taintedBytes())
            << "seed " << sp.seed << " step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, AlgorithmEquivalence,
    ::testing::Values(SweepParams{101, 5, 1, true},
                      SweepParams{102, 13, 3, true},
                      SweepParams{103, 13, 3, false},
                      SweepParams{104, 1, 1, true},
                      SweepParams{105, 20, 10, true},
                      SweepParams{106, 8, 2, false},
                      SweepParams{107, 3, 2, true},
                      SweepParams{108, 18, 3, true}),
    [](const ::testing::TestParamInfo<SweepParams> &info) {
        return "seed" + std::to_string(info.param.seed);
    });
