/**
 * @file
 * Tests for the analysis layer: the distance profiler on synthetic
 * streams, replay-based evaluation, the accuracy sweep, overhead
 * measurement, and the static census.
 */

#include <gtest/gtest.h>

#include "analysis/census.hh"
#include "analysis/evaluate.hh"
#include "analysis/profiler.hh"

using namespace pift;
using analysis::DistanceProfiler;

namespace
{

sim::TraceRecord
memRec(SeqNum seq, sim::MemKind kind, Addr start, Addr len = 4)
{
    sim::TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = 1;
    r.op = kind == sim::MemKind::Load ? isa::Op::Ldr : isa::Op::Str;
    r.mem_kind = kind;
    r.mem_start = start;
    r.mem_end = start + len - 1;
    // Route data through r1 so the full-DIFT baseline sees the flow.
    if (kind == sim::MemKind::Load)
        r.dst = 1;
    else
        r.src[0] = 1;
    return r;
}

sim::TraceRecord
aluRec(SeqNum seq)
{
    sim::TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = 1;
    r.op = isa::Op::Add;
    return r;
}

/** L _ _ S L S pattern repeated. */
sim::Trace
syntheticTrace()
{
    sim::Trace t;
    SeqNum seq = 0;
    for (int rep = 0; rep < 10; ++rep) {
        t.records.push_back(memRec(seq++, sim::MemKind::Load, 0x1000));
        t.records.push_back(aluRec(seq++));
        t.records.push_back(aluRec(seq++));
        t.records.push_back(memRec(seq++, sim::MemKind::Store,
                                   0x2000));
        t.records.push_back(memRec(seq++, sim::MemKind::Load, 0x1004));
        t.records.push_back(memRec(seq++, sim::MemKind::Store,
                                   0x2004));
    }
    return t;
}

} // namespace

TEST(Profiler, CountsAndFig2Metrics)
{
    DistanceProfiler p;
    p.consume(syntheticTrace());
    EXPECT_EQ(p.loadCount(), 20u);
    EXPECT_EQ(p.storeCount(), 20u);
    EXPECT_EQ(p.instructionCount(), 60u);

    // Store->last-load distances: alternately 3 and 1.
    EXPECT_EQ(p.storeToLastLoad().at(3), 10u);
    EXPECT_EQ(p.storeToLastLoad().at(1), 10u);
    EXPECT_EQ(p.storeToLastLoad().count(), 20u);

    // Stores between consecutive loads: always 1 (19 gaps).
    EXPECT_EQ(p.storesBetweenLoads().at(1), 19u);

    // Load->load distances: alternately 4 and 2.
    EXPECT_EQ(p.loadToLoad().at(4), 10u);
    EXPECT_EQ(p.loadToLoad().at(2), 9u);
}

TEST(Profiler, StoresInWindow)
{
    DistanceProfiler p;
    p.consume(syntheticTrace());
    // Window 1 after the first load of a group: no store (distance 3).
    auto h1 = p.storesInWindow(1);
    EXPECT_GT(h1.at(0), 0u);
    // Window 3 catches exactly one store for every load.
    auto h3 = p.storesInWindow(3);
    EXPECT_EQ(h3.at(1), 20u);
    // A huge window sees many stores.
    auto h50 = p.storesInWindow(50);
    EXPECT_GT(h50.mean(), 5.0);
}

TEST(Profiler, MeanDistanceToRankedStores)
{
    DistanceProfiler p;
    p.consume(syntheticTrace());
    // Rank 1 within window 3: distance 3 for group loads, 1 for the
    // second loads -> mean 2.
    EXPECT_DOUBLE_EQ(p.meanDistanceToStore(3, 1), 2.0);
    // Rank 2 within window 3 never fits.
    EXPECT_DOUBLE_EQ(p.meanDistanceToStore(3, 2), 0.0);
}

TEST(Evaluate, DetectsDirectFlowAndRespectsWindow)
{
    // source [0x1000]; load it, store to 0x2000 at distance 2;
    // check 0x2000.
    sim::Trace t;
    sim::ControlEvent src;
    src.seq = 0;
    src.kind = sim::ControlKind::RegisterSource;
    src.pid = 1;
    src.start = 0x1000;
    src.end = 0x1003;
    t.controls.push_back(src);
    t.records.push_back(memRec(0, sim::MemKind::Load, 0x1000));
    t.records.push_back(aluRec(1));
    t.records.push_back(memRec(2, sim::MemKind::Store, 0x2000));
    sim::ControlEvent chk;
    chk.seq = 3;
    chk.kind = sim::ControlKind::CheckSink;
    chk.pid = 1;
    chk.start = 0x2000;
    chk.end = 0x2003;
    chk.id = 1;
    t.controls.push_back(chk);

    core::PiftParams wide{5, 3, true};
    core::PiftParams narrow{1, 3, true};
    EXPECT_TRUE(analysis::piftDetectsLeak(t, wide));
    EXPECT_FALSE(analysis::piftDetectsLeak(t, narrow));
    EXPECT_EQ(analysis::minimalNi(t, 3), 2u);
    EXPECT_TRUE(analysis::baselineDetectsLeak(t));
}

TEST(Evaluate, MinimalNiReturnsSentinelWhenNeverDetected)
{
    sim::Trace t;
    t.records.push_back(aluRec(0));
    sim::ControlEvent chk;
    chk.seq = 1;
    chk.kind = sim::ControlKind::CheckSink;
    chk.pid = 1;
    chk.start = 0x2000;
    chk.end = 0x2003;
    t.controls.push_back(chk);
    EXPECT_EQ(analysis::minimalNi(t, 3, 10), 11u);
}

TEST(Evaluate, AccuracyConfusionMatrix)
{
    std::vector<analysis::LabelledTrace> set;
    // One true positive, one true negative.
    {
        analysis::LabelledTrace lt;
        lt.name = "leaky";
        lt.leaks = true;
        sim::ControlEvent src;
        src.kind = sim::ControlKind::RegisterSource;
        src.pid = 1;
        src.start = 0x1000;
        src.end = 0x1003;
        lt.trace.controls.push_back(src);
        sim::ControlEvent chk;
        chk.seq = 0;
        chk.kind = sim::ControlKind::CheckSink;
        chk.pid = 1;
        chk.start = 0x1000;
        chk.end = 0x1000;
        lt.trace.controls.push_back(chk);
        set.push_back(std::move(lt));
    }
    {
        analysis::LabelledTrace lt;
        lt.name = "benign";
        lt.leaks = false;
        sim::ControlEvent chk;
        chk.kind = sim::ControlKind::CheckSink;
        chk.pid = 1;
        chk.start = 0x9000;
        chk.end = 0x9003;
        lt.trace.controls.push_back(chk);
        set.push_back(std::move(lt));
    }
    auto acc = analysis::evaluateAccuracy(set, {13, 3, true});
    EXPECT_EQ(acc.tp, 1u);
    EXPECT_EQ(acc.tn, 1u);
    EXPECT_EQ(acc.fp, 0u);
    EXPECT_EQ(acc.fn, 0u);
    EXPECT_DOUBLE_EQ(acc.accuracy(), 1.0);

    auto sweep = analysis::accuracySweep(set, 3, 2);
    EXPECT_DOUBLE_EQ(sweep.at(1, 1), 100.0);
    EXPECT_DOUBLE_EQ(sweep.at(2, 3), 100.0);
}

TEST(Evaluate, OverheadTimelinesTrackState)
{
    sim::Trace t;
    sim::ControlEvent src;
    src.seq = 0;
    src.kind = sim::ControlKind::RegisterSource;
    src.pid = 1;
    src.start = 0x1000;
    src.end = 0x100f; // 16 bytes
    t.controls.push_back(src);
    t.records.push_back(memRec(0, sim::MemKind::Load, 0x1000));
    t.records.push_back(memRec(1, sim::MemKind::Store, 0x2000));
    for (SeqNum s = 2; s < 30; ++s)
        t.records.push_back(aluRec(s));
    t.records.push_back(memRec(30, sim::MemKind::Store, 0x2000));

    auto o = analysis::measureOverhead(t, {5, 3, true});
    EXPECT_EQ(o.max_tainted_bytes, 20u);
    EXPECT_EQ(o.max_ranges, 2u);
    EXPECT_EQ(o.taint_ops, 2u);   // source + in-window store
    EXPECT_EQ(o.untaint_ops, 1u); // late overwrite
    EXPECT_EQ(o.horizon, t.records.size());
    EXPECT_DOUBLE_EQ(o.tainted_bytes.lastValue(), 16.0);
    EXPECT_DOUBLE_EQ(o.cumulative_ops.lastValue(), 3.0);
}

TEST(Census, RanksByFrequency)
{
    analysis::CensusMap counts;
    counts[dalvik::Bc::Move] = 10;
    counts[dalvik::Bc::AddInt] = 30;
    counts[dalvik::Bc::Goto] = 20;
    auto ranked = analysis::rankCensus(counts, 2);
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].bc, dalvik::Bc::AddInt);
    EXPECT_DOUBLE_EQ(ranked[0].percent, 50.0);
    EXPECT_EQ(ranked[1].bc, dalvik::Bc::Goto);
}

TEST(Census, AccumulatesByOrigin)
{
    dalvik::Dex dex;
    dalvik::MethodBuilder app("app.m", 8, 0);
    app.const4(0, 1).returnValue(0);
    dex.addMethod(app.origin(dalvik::MethodOrigin::App).finish());
    dalvik::MethodBuilder lib("lib.m", 8, 0);
    lib.nop().returnVoid();
    dex.addMethod(lib.origin(dalvik::MethodOrigin::SystemLib).finish());

    analysis::CensusMap apps, libs;
    analysis::accumulateCensus(dex, dalvik::MethodOrigin::App, apps);
    analysis::accumulateCensus(dex, dalvik::MethodOrigin::SystemLib,
                               libs);
    EXPECT_EQ(apps[dalvik::Bc::Const4], 1u);
    EXPECT_EQ(apps[dalvik::Bc::Return], 1u);
    EXPECT_EQ(apps.count(dalvik::Bc::Nop), 0u);
    EXPECT_EQ(libs[dalvik::Bc::Nop], 1u);
    EXPECT_EQ(libs[dalvik::Bc::ReturnVoid], 1u);
}

TEST(Census, DistanceTableConsistentWithAnnotations)
{
    auto rows = analysis::bytecodeDistanceTable();
    ASSERT_EQ(rows.size(), dalvik::num_bytecodes);
    for (const auto &row : rows) {
        if (row.expected >= 0) {
            EXPECT_EQ(row.measured, row.expected)
                << dalvik::bcName(row.bc);
        } else {
            EXPECT_EQ(row.measured, row.expected)
                << dalvik::bcName(row.bc);
        }
    }
}
