/**
 * @file
 * Tests for the Android layer: the Figure 3 PIFT stack (address
 * translation, kernel-module command publication), framework sources
 * registering exactly the right ranges, sinks checking the outgoing
 * buffers, intents and callbacks.
 */

#include <gtest/gtest.h>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "droidbench/app.hh"
#include "droidbench/helpers.hh"

using namespace pift;
using droidbench::AppContext;

TEST(PiftNative, StringTranslation)
{
    AppContext ctx;
    runtime::Ref s = ctx.heap.allocString(ctx.dex.stringClass(),
                                          "12345");
    android::PiftNative native(ctx.heap);
    taint::AddrRange r = native.translateString(s);
    EXPECT_EQ(r.start, ctx.heap.dataAddr(s));
    EXPECT_EQ(r.bytes(), 10u); // 5 chars * 2 bytes
}

TEST(PiftNative, FieldTranslation)
{
    AppContext ctx;
    runtime::Ref obj = ctx.heap.allocObject(ctx.dex.objectClass(), 3);
    android::PiftNative native(ctx.heap);
    taint::AddrRange r = native.translateField(obj, 2);
    EXPECT_EQ(r.start, ctx.heap.fieldAddr(obj, 2));
    EXPECT_EQ(r.bytes(), 4u);
}

TEST(PiftModule, PublishesControlEvents)
{
    AppContext ctx;
    ctx.env.module().registerRange(taint::AddrRange(0x4000, 0x40ff),
                                   3);
    ctx.env.module().checkRange(taint::AddrRange(0x4000, 0x4001), 9);
    ctx.env.module().clearAll();
    const auto &controls = ctx.buffer.trace().controls;
    ASSERT_EQ(controls.size(), 3u);
    EXPECT_EQ(controls[0].kind, sim::ControlKind::RegisterSource);
    EXPECT_EQ(controls[0].start, 0x4000u);
    EXPECT_EQ(controls[0].id, 3u);
    EXPECT_EQ(controls[1].kind, sim::ControlKind::CheckSink);
    EXPECT_EQ(controls[1].id, 9u);
    EXPECT_EQ(controls[2].kind, sim::ControlKind::ClearAll);
}

namespace
{

/** Build and run a one-line app main. */
droidbench::AppRun
runMain(const std::function<void(AppContext &,
                                 dalvik::MethodBuilder &)> &body)
{
    droidbench::AppEntry entry;
    entry.name = "test_app";
    entry.declare = [&body](AppContext &ctx) {
        dalvik::MethodBuilder b("test.main", droidbench::app_nregs, 0);
        body(ctx, b);
        b.returnVoid();
        return ctx.dex.addMethod(b.finish());
    };
    return droidbench::runApp(entry);
}

} // namespace

TEST(Framework, DeviceIdSourceRegistersItsCharRange)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        droidbench::emitSource(b, ctx.env.get_device_id, 10);
    });
    ASSERT_EQ(run.trace.controls.size(), 1u);
    const auto &ev = run.trace.controls[0];
    EXPECT_EQ(ev.kind, sim::ControlKind::RegisterSource);
    EXPECT_EQ(ev.id, static_cast<uint32_t>(
        android::SourceType::DeviceId));
    // The default IMEI is 15 chars = 30 bytes.
    EXPECT_EQ(ev.end - ev.start + 1, 30u);
}

TEST(Framework, LocationRegistersBothFloatFields)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        b.invokeStatic(ctx.env.get_location, 0, 0);
        b.moveResultObject(10);
    });
    ASSERT_EQ(run.trace.controls.size(), 2u);
    EXPECT_EQ(run.trace.controls[0].end - run.trace.controls[0].start,
              3u);
    EXPECT_EQ(run.trace.controls[1].start,
              run.trace.controls[0].start + 4);
}

TEST(Framework, SinksCheckAndRecordPayloads)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        droidbench::emitConst(ctx, b, 10, "payload-text");
        droidbench::emitSms(ctx, b, 10);
        droidbench::emitLog(ctx, b, 10);
    });
    ASSERT_EQ(run.sink_calls.size(), 2u);
    EXPECT_EQ(run.sink_calls[0].type, android::SinkType::Sms);
    EXPECT_EQ(run.sink_calls[0].payload, "payload-text");
    EXPECT_EQ(run.sink_calls[1].type, android::SinkType::Log);
    // Both produced CheckSink events.
    unsigned checks = 0;
    for (const auto &ev : run.trace.controls)
        checks += ev.kind == sim::ControlKind::CheckSink;
    EXPECT_EQ(checks, 2u);
}

TEST(Framework, HttpChecksUrlAndBody)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        droidbench::emitConst(ctx, b, 10, "body");
        droidbench::emitHttp(ctx, b, 10);
    });
    unsigned checks = 0;
    for (const auto &ev : run.trace.controls)
        checks += ev.kind == sim::ControlKind::CheckSink;
    EXPECT_EQ(checks, 2u); // url + body
    ASSERT_EQ(run.sink_calls.size(), 1u);
    EXPECT_NE(run.sink_calls[0].payload.find("body"),
              std::string::npos);
}

TEST(Framework, IntentExtrasRoundTrip)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        b.invokeStatic(ctx.env.intent_init, 0, 0);
        b.moveResultObject(5);
        droidbench::emitConst(ctx, b, 6, "extra-value");
        b.moveObject(0, 5);
        b.const4(1, 3);
        b.moveObject(2, 6);
        b.invokeStatic(ctx.env.intent_put_extra, 3, 0);
        b.moveObject(0, 5);
        b.const4(1, 3);
        b.invokeStatic(ctx.env.intent_get_extra, 2, 0);
        b.moveResultObject(7);
        droidbench::emitLog(ctx, b, 7);
    });
    ASSERT_EQ(run.sink_calls.size(), 1u);
    EXPECT_EQ(run.sink_calls[0].payload, "extra-value");
}

TEST(Framework, HandlerPostDispatchesThroughVtable)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        dalvik::MethodBuilder runm("CbTest.run", 8, 1);
        runm.igetObject(2, 7, 0);
        droidbench::emitLog(ctx, runm, 2);
        runm.returnVoid();
        auto run_id = ctx.dex.addMethod(runm.finish());
        auto cls = ctx.dex.addClass({"CbTest", 1, 0, {run_id}});

        droidbench::emitConst(ctx, b, 10, "from-callback");
        b.newInstance(5, static_cast<uint16_t>(cls));
        b.iputObject(10, 5, 0);
        b.moveObject(4, 5);
        b.invokeStatic(ctx.env.handler_post, 1, 4);
    });
    ASSERT_EQ(run.sink_calls.size(), 1u);
    EXPECT_EQ(run.sink_calls[0].payload, "from-callback");
}

TEST(Framework, SourcesReturnFreshObjectsEachCall)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        droidbench::emitSource(b, ctx.env.get_device_id, 10);
        droidbench::emitSource(b, ctx.env.get_device_id, 11);
    });
    ASSERT_EQ(run.trace.controls.size(), 2u);
    EXPECT_NE(run.trace.controls[0].start,
              run.trace.controls[1].start);
}

TEST(Framework, LocationStringHasCoordinates)
{
    auto run = runMain([](AppContext &ctx, dalvik::MethodBuilder &b) {
        droidbench::emitSource(b, ctx.env.get_location_string, 10);
        droidbench::emitLog(ctx, b, 10);
    });
    ASSERT_EQ(run.sink_calls.size(), 1u);
    EXPECT_NE(run.sink_calls[0].payload.find("37.42"),
              std::string::npos);
}

namespace
{
core::PiftTracker *s_tracker = nullptr;
} // namespace

TEST(Framework, EndToEndLiveDetection)
{
    // Attach a live tracker to the hub (not a replay): the paper's
    // deployment mode. Build the app, taint flows through the real
    // mterp, the sink check fires against live taint state.
    droidbench::AppEntry entry;
    entry.name = "live";
    entry.declare = [](AppContext &ctx) {
        // Attach the tracker before execution.
        static core::IdealRangeStore store;
        static core::PiftTracker tracker({13, 3, true}, store);
        store.clear();
        tracker.reset();
        ctx.hub.addSink(&tracker);
        dalvik::MethodBuilder b("live.main", droidbench::app_nregs, 0);
        droidbench::emitSource(b, ctx.env.get_device_id, 10);
        droidbench::emitConst(ctx, b, 11, "x=");
        droidbench::emitConcat(ctx, b, 12, 11, 10);
        droidbench::emitSms(ctx, b, 12);
        b.returnVoid();
        auto id = ctx.dex.addMethod(b.finish());
        // Stash the tracker pointer for the assertion below.
        s_tracker = &tracker;
        return id;
    };
    droidbench::runApp(entry);
    ASSERT_NE(s_tracker, nullptr);
    EXPECT_TRUE(s_tracker->anyLeak());
}
