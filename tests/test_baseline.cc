/**
 * @file
 * Unit tests for the full register-level DIFT baseline: propagation
 * through ALU/load/store, immediates cleaning registers, ldrd/ldm
 * precision, the ABI-helper taint summary, and end-to-end ground
 * truth on crafted programs.
 */

#include <gtest/gtest.h>

#include "baseline/full_tracker.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/cpu.hh"

using namespace pift;
using baseline::FullTracker;
using taint::AddrRange;

namespace
{

/** Run a program on a CPU with the baseline attached live. */
struct Machine
{
    Machine() : cpu(memory, hub) { hub.addSink(&tracker); }

    void
    run(isa::Assembler &a)
    {
        a.halt();
        cpu.loadProgram(a.finish());
        cpu.setPc(0x8000);
        cpu.run();
    }

    void
    taintSource(Addr start, Addr end)
    {
        sim::ControlEvent ev;
        ev.pid = cpu.pid();
        ev.kind = sim::ControlKind::RegisterSource;
        ev.start = start;
        ev.end = end;
        tracker.onControl(ev);
    }

    mem::Memory memory;
    sim::EventHub hub;
    FullTracker tracker;
    sim::Cpu cpu;
};

} // namespace

TEST(Baseline, LoadTaintsRegister)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));
    a.ldr(2, isa::memOff(5, 4)); // clean address
    m.run(a);
    EXPECT_TRUE(m.tracker.regTainted(1, 1));
    EXPECT_FALSE(m.tracker.regTainted(1, 2));
}

TEST(Baseline, AluPropagatesUnion)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));  // r1 tainted
    a.movi(2, 7);                 // r2 clean
    a.add(3, 1, isa::reg(2));     // tainted | clean -> tainted
    a.add(4, 2, isa::imm(1));     // clean
    a.mov(6, isa::reg(3));        // copy keeps taint
    a.eor(3, 2, isa::reg(2));     // overwrite with clean -> cleaned
    m.run(a);
    EXPECT_TRUE(m.tracker.regTainted(1, 6));
    EXPECT_FALSE(m.tracker.regTainted(1, 4));
    EXPECT_FALSE(m.tracker.regTainted(1, 3));
}

TEST(Baseline, ImmediateMovCleansRegister)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));
    a.movi(1, 0);                 // constant overwrite
    m.run(a);
    EXPECT_FALSE(m.tracker.regTainted(1, 1));
}

TEST(Baseline, StorePropagatesAndCleansMemory)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(6, 0x2000);
    a.ldr(1, isa::memOff(5, 0));
    a.str(1, isa::memOff(6, 0));  // taint [0x2000,0x2003]
    a.movi(2, 0);
    a.str(2, isa::memOff(6, 0));  // clean store untaints
    a.str(1, isa::memOff(6, 8));  // taint [0x2008,0x200b]
    m.run(a);
    EXPECT_FALSE(
        m.tracker.memTaint(1).overlaps(AddrRange(0x2000, 0x2003)));
    EXPECT_TRUE(
        m.tracker.memTaint(1).overlaps(AddrRange(0x2008, 0x200b)));
}

TEST(Baseline, PointerTaintDoesNotPropagate)
{
    // The classic DIFT choice: a load through a tainted pointer does
    // not taint the loaded value.
    Machine m;
    m.taintSource(0x1000, 0x1003);
    m.memory.write32(0x1000, 0x3000); // the tainted word is a pointer
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));   // r1 tainted (holds 0x3000)
    a.ldr(2, isa::memOff(1, 0));   // load through tainted pointer
    m.run(a);
    EXPECT_TRUE(m.tracker.regTainted(1, 1));
    EXPECT_FALSE(m.tracker.regTainted(1, 2));
}

TEST(Baseline, LdrdTracksHalvesIndependently)
{
    Machine m;
    m.taintSource(0x1004, 0x1007); // only the high word
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldrd(0, isa::memOff(5, 0));
    m.run(a);
    EXPECT_FALSE(m.tracker.regTainted(1, 0));
    EXPECT_TRUE(m.tracker.regTainted(1, 1));
}

TEST(Baseline, StrdWritesHalvesIndependently)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(6, 0x2000);
    a.ldr(0, isa::memOff(5, 0));  // r0 tainted
    a.movi(1, 9);                 // r1 clean
    a.strd(0, isa::memOff(6, 0));
    m.run(a);
    EXPECT_TRUE(
        m.tracker.memTaint(1).overlaps(AddrRange(0x2000, 0x2003)));
    EXPECT_FALSE(
        m.tracker.memTaint(1).overlaps(AddrRange(0x2004, 0x2007)));
}

TEST(Baseline, LdmPerWordPrecision)
{
    Machine m;
    m.taintSource(0x1004, 0x1007); // second word only
    isa::Assembler a(0x8000);
    a.movi(10, 0x1000);
    a.ldm(10, 0, 3);
    m.run(a);
    EXPECT_FALSE(m.tracker.regTainted(1, 0));
    EXPECT_TRUE(m.tracker.regTainted(1, 1));
    EXPECT_FALSE(m.tracker.regTainted(1, 2));
}

TEST(Baseline, AbiHelperSummaryPropagatesArguments)
{
    // svc #16.. #20 are two-argument helpers: taint(r0) |= taint(r1).
    Machine m;
    m.taintSource(0x1000, 0x1003);
    m.cpu.setSvcHandler([](sim::Cpu &, uint32_t) {});
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(0, 100);
    a.ldr(1, isa::memOff(5, 0)); // r1 tainted divisor
    a.svc(16);                   // __aeabi_idiv
    m.run(a);
    EXPECT_TRUE(m.tracker.regTainted(1, 0));
}

TEST(Baseline, CompareAndBranchHaveNoTaintEffect)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));
    a.cmp(1, isa::imm(0));
    a.b("next", isa::Cond::Ne);
    a.label("next");
    a.movi(2, 1, isa::Cond::Eq);
    m.run(a);
    // No implicit-flow tracking: r2 stays clean.
    EXPECT_FALSE(m.tracker.regTainted(1, 2));
}

TEST(Baseline, SinkChecksAndLeakVerdict)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(6, 0x2000);
    a.ldrh(1, isa::memOff(5, 0));
    a.strh(1, isa::memOff(6, 0));
    m.run(a);

    sim::ControlEvent ev;
    ev.pid = 1;
    ev.kind = sim::ControlKind::CheckSink;
    ev.start = 0x2000;
    ev.end = 0x2005;
    ev.id = 3;
    m.tracker.onControl(ev);
    ASSERT_EQ(m.tracker.sinkResults().size(), 1u);
    EXPECT_TRUE(m.tracker.sinkResults()[0].tainted);
    EXPECT_TRUE(m.tracker.anyLeak());
}

TEST(Baseline, PerProcessIsolation)
{
    Machine m;
    m.taintSource(0x1000, 0x1003); // pid 1
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));
    a.halt();
    m.cpu.loadProgram(a.finish());

    m.cpu.setPid(2);
    m.cpu.setPc(0x8000);
    m.cpu.run();
    EXPECT_FALSE(m.tracker.regTainted(2, 1));

    m.cpu.setPid(1);
    m.cpu.setPc(0x8000);
    m.cpu.run();
    EXPECT_TRUE(m.tracker.regTainted(1, 1));
}

TEST(Baseline, StatsCountPropagationWork)
{
    Machine m;
    isa::Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.ldr(1, isa::memOff(5, 0));
    a.add(2, 1, isa::imm(1));
    a.str(2, isa::memOff(5, 8));
    m.run(a);
    // Every instruction (4 retired) processed; each of movi/ldr/add/
    // str did taint work.
    EXPECT_EQ(m.tracker.stats().instructions, 4u);
    EXPECT_EQ(m.tracker.stats().propagations, 4u);
    EXPECT_EQ(m.tracker.stats().mem_ops, 1u);
}

TEST(Baseline, ResetClearsEverything)
{
    Machine m;
    m.taintSource(0x1000, 0x1003);
    m.tracker.reset();
    EXPECT_FALSE(
        m.tracker.memTaint(1).overlaps(AddrRange(0x1000, 0x1003)));
    EXPECT_EQ(m.tracker.stats().instructions, 0u);
}
