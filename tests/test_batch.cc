/**
 * @file
 * Tests for the batched SoA event pipeline and the decoded-instruction
 * cache (DESIGN.md §12). The contract under test is strict
 * equivalence: batching and decode caching are allowed to change
 * nothing observable — not verdicts, not stats, not exported state,
 * not a single captured trace byte — at any batch size or cache
 * geometry, over the entire 64-app registry.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "core/taint_storage.hh"
#include "droidbench/app.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/batch.hh"
#include "sim/cpu.hh"
#include "sim/trace.hh"
#include "sim/trace_io.hh"

using namespace pift;
using namespace pift::sim;

namespace
{

TraceRecord
makeRecord(SeqNum seq, MemKind kind = MemKind::None)
{
    TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = 1;
    r.pc = 0x8000 + static_cast<Addr>(4 * seq);
    r.op = kind == MemKind::Load ? isa::Op::Ldr
        : kind == MemKind::Store ? isa::Op::Str : isa::Op::Nop;
    r.mem_kind = kind;
    if (kind != MemKind::None) {
        r.mem_start = 0x1000 + static_cast<Addr>(seq);
        r.mem_end = r.mem_start + 3;
    }
    return r;
}

/** Sink logging delivery order through the per-event interface. */
struct OrderSink : TraceSink
{
    void
    onRecord(const TraceRecord &rec) override
    {
        log.push_back("R" + std::to_string(rec.seq));
    }

    void
    onControl(const ControlEvent &ev) override
    {
        log.push_back("C" + std::to_string(ev.id));
    }

    std::vector<std::string> log;
};

/** Batch-aware sink checking SoA columns against the AoS rows. */
struct BatchSink : TraceSink
{
    void
    onRecord(const TraceRecord &rec) override
    {
        seen.push_back(rec.seq);
    }

    void
    onControl(const ControlEvent &ev) override
    {
        controls.push_back(ev.id);
    }

    void
    onBatch(const EventBatch &batch) override
    {
        ++batches;
        for (uint32_t i = 0; i < batch.count; ++i)
            seen.push_back(batch.records[i].seq);
        for (uint32_t k = 0; k < batch.mem_count; ++k) {
            const TraceRecord &rec =
                batch.records[batch.mem_index[k] - batch.index_base];
            EXPECT_EQ(batch.pid[k], rec.pid);
            EXPECT_EQ(batch.local_seq[k], rec.local_seq);
            EXPECT_EQ(batch.pc[k], rec.pc);
            EXPECT_EQ(batch.start[k], rec.mem_start);
            EXPECT_EQ(batch.end[k], rec.mem_end);
            EXPECT_EQ(static_cast<MemKind>(batch.kind[k]),
                      rec.mem_kind);
        }
    }

    std::vector<SeqNum> seen;
    std::vector<uint32_t> controls;
    int batches = 0;
};

Trace
mixedTrace()
{
    Trace t;
    for (SeqNum s = 0; s < 23; ++s)
        t.records.push_back(makeRecord(
            s, s % 3 == 0 ? MemKind::Load
                          : s % 3 == 1 ? MemKind::Store
                                       : MemKind::None));
    // Controls before the first record, mid-stream (including two at
    // the same seq), and after the last record.
    for (uint32_t i = 0; i < 5; ++i) {
        ControlEvent ev;
        ev.id = i;
        ev.kind = ControlKind::RegisterSource;
        ev.seq = i == 0 ? 0 : i == 4 ? 23 : 7 * i;
        t.controls.push_back(ev);
    }
    return t;
}

std::string
serialize(const Trace &trace)
{
    std::ostringstream os;
    writeTrace(os, trace);
    return os.str();
}

/** The full 64-app registry, captured once per process. */
const std::vector<droidbench::AppRun> &
registryRuns()
{
    static const std::vector<droidbench::AppRun> runs = [] {
        std::vector<droidbench::AppRun> out;
        for (const auto &entry : droidbench::droidBenchApps())
            out.push_back(droidbench::runApp(entry));
        for (const auto &entry : droidbench::malwareApps())
            out.push_back(droidbench::runApp(entry));
        return out;
    }();
    return runs;
}

void
expectSameTrackerState(const core::TrackerState &a,
                       const core::TrackerState &b)
{
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].pid, b.windows[i].pid);
        EXPECT_EQ(a.windows[i].active, b.windows[i].active);
        EXPECT_EQ(a.windows[i].ltlt, b.windows[i].ltlt);
        EXPECT_EQ(a.windows[i].used, b.windows[i].used);
    }
    EXPECT_EQ(a.lossy, b.lossy);
    EXPECT_EQ(a.global_loss, b.global_loss);
    ASSERT_EQ(a.sinks.size(), b.sinks.size());
    for (size_t i = 0; i < a.sinks.size(); ++i) {
        EXPECT_EQ(a.sinks[i].sink_id, b.sinks[i].sink_id);
        EXPECT_EQ(a.sinks[i].pid, b.sinks[i].pid);
        EXPECT_EQ(a.sinks[i].range.start, b.sinks[i].range.start);
        EXPECT_EQ(a.sinks[i].range.end, b.sinks[i].range.end);
        EXPECT_EQ(a.sinks[i].tainted, b.sinks[i].tainted);
        EXPECT_EQ(a.sinks[i].verdict, b.sinks[i].verdict);
        EXPECT_EQ(a.sinks[i].at_records, b.sinks[i].at_records);
    }
    EXPECT_EQ(a.records_seen, b.records_seen);
    EXPECT_EQ(a.controls_seen, b.controls_seen);
}

void
expectSameTrackerStats(const core::TrackerStats &a,
                       const core::TrackerStats &b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.tainted_loads, b.tainted_loads);
    EXPECT_EQ(a.taint_ops, b.taint_ops);
    EXPECT_EQ(a.untaint_ops, b.untaint_ops);
    EXPECT_EQ(a.max_tainted_bytes, b.max_tainted_bytes);
    EXPECT_EQ(a.max_ranges, b.max_ranges);
    EXPECT_EQ(a.stream_loss_events, b.stream_loss_events);
}

void
expectSameStorageStats(const core::StorageStats &a,
                       const core::StorageStats &b)
{
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.lookup_hits, b.lookup_hits);
    EXPECT_EQ(a.spill_hits, b.spill_hits);
    EXPECT_EQ(a.inserts, b.inserts);
    EXPECT_EQ(a.removes, b.removes);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.saturation_events, b.saturation_events);
    EXPECT_EQ(a.coalesces, b.coalesces);
    EXPECT_EQ(a.max_entries_used, b.max_entries_used);
    EXPECT_EQ(a.entry_compares, b.entry_compares);
    EXPECT_EQ(a.hot_probe_hits, b.hot_probe_hits);
}

} // namespace

TEST(BatchPipeline, ShimUnrollsBatchesIdentically)
{
    Trace t = mixedTrace();
    OrderSink per_event;
    replay(t, per_event);
    for (uint32_t records : {1u, 2u, 3u, 5u, 64u,
                             default_batch_records}) {
        OrderSink batched;
        replayBatched(t, batched, records);
        EXPECT_EQ(batched.log, per_event.log)
            << "batch size " << records;
    }
}

TEST(BatchPipeline, BatchSinkSeesEveryRecordOnceInOrder)
{
    Trace t = mixedTrace();
    for (uint32_t records : {1u, 3u, 7u, 1024u}) {
        BatchSink sink;
        replayBatched(t, sink, records);
        ASSERT_EQ(sink.seen.size(), t.records.size());
        for (SeqNum s = 0; s < sink.seen.size(); ++s)
            EXPECT_EQ(sink.seen[s], s);
        EXPECT_EQ(sink.controls.size(), t.controls.size());
        EXPECT_GT(sink.batches, 0);
    }
}

TEST(BatchPipeline, ZeroBatchSizeFallsBackToPerEvent)
{
    Trace t = mixedTrace();
    BatchSink sink;
    replayBatched(t, sink, 0);
    EXPECT_EQ(sink.batches, 0);
    EXPECT_EQ(sink.seen.size(), t.records.size());
}

TEST(BatchPipeline, PackedTraceSlicesMatchSource)
{
    Trace t = mixedTrace();
    PackedTrace packed(t);
    uint32_t mems = 0;
    for (const auto &rec : t.records)
        mems += rec.mem_kind != MemKind::None;
    EXPECT_EQ(packed.memCount(), mems);
    EventBatch whole = packed.sliceAt(
        0, static_cast<uint32_t>(t.records.size()));
    EXPECT_EQ(whole.count, t.records.size());
    EXPECT_EQ(whole.mem_count, mems);
}

/**
 * The tentpole differential: over the whole registry, batched replay
 * must reproduce the per-event tracker bit for bit — verdicts, every
 * stats counter, exported tracker state and the backing TaintStorage's
 * operation counters (which also pins that the hot-probe memo never
 * changes observable storage behaviour). Batch sizes cover the
 * degenerate single-record chunk, a prime that divides no app's
 * record count evenly, the shipped default, and a per-app random size
 * from a fixed seed.
 */
TEST(BatchPipeline, RegistryDifferentialAgainstPerEvent)
{
    std::mt19937 rng(20160402u);
    std::uniform_int_distribution<uint32_t> size_dist(2, 2048);
    core::PiftParams params;
    for (const auto &run : registryRuns()) {
        core::TaintStorage ref_store{core::TaintStorageParams{}};
        core::PiftTracker ref(params, ref_store);
        replay(run.trace, ref);
        const core::TrackerState ref_state = ref.exportState();

        uint32_t sizes[] = {1, 997, default_batch_records,
                            size_dist(rng)};
        for (uint32_t records : sizes) {
            core::TaintStorage store{core::TaintStorageParams{}};
            core::PiftTracker tracker(params, store);
            replayBatched(run.trace, tracker, records);
            EXPECT_EQ(tracker.anyLeak(), ref.anyLeak());
            expectSameTrackerStats(tracker.stats(), ref.stats());
            expectSameTrackerState(tracker.exportState(), ref_state);
            expectSameStorageStats(store.stats(), ref_store.stats());
        }
    }
}

/**
 * Live capture through Cpu::setBatching must produce a byte-identical
 * trace: flushes before every Svc trap keep control events (published
 * inside trap handlers, stamped with hub.recordCount()) interleaved
 * exactly as in per-event publishing. Batch size 3 forces mid-app
 * flushes around nearly every trap.
 */
TEST(BatchPipeline, LiveCaptureEquivalence)
{
    std::vector<droidbench::AppEntry> entries;
    const auto &apps = droidbench::droidBenchApps();
    entries.assign(apps.begin(), apps.begin() + 3);
    entries.push_back(droidbench::malwareApps().front());

    for (const auto &entry : entries) {
        std::string reference;
        for (uint32_t records : {0u, 3u, default_batch_records}) {
            droidbench::AppContext ctx;
            ctx.cpu.setBatching(records);
            dalvik::MethodId main = entry.declare(ctx);
            ctx.vm.boot();
            ctx.vm.execute(main);
            std::string image = serialize(ctx.buffer.trace());
            if (records == 0)
                reference = image;
            else
                EXPECT_EQ(image, reference)
                    << entry.name << " at batch size " << records;
        }
        ASSERT_FALSE(reference.empty());
    }
}

namespace
{

/** Minimal machine mirroring the test_cpu harness. */
struct Machine
{
    Machine() : cpu(memory, hub) { hub.addSink(&buffer); }

    mem::Memory memory;
    EventHub hub;
    TraceBuffer buffer;
    Cpu cpu;
};

/** A store/load loop with enough distinct pcs to exercise a cache. */
isa::Program
loopProgram(Addr base, uint32_t iters)
{
    isa::Assembler a(base);
    a.movi(0, static_cast<int32_t>(iters)); // counter
    a.movi(1, 0x2000);                      // buffer base
    a.movi(2, 0xab);                        // store value
    a.label("loop");
    a.str(2, isa::memOff(1, 0));
    a.ldr(3, isa::memOff(1, 0));
    a.add(1, 1, isa::imm(4));
    a.add(2, 2, isa::imm(1));
    a.sub(0, 0, isa::imm(1), isa::Cond::Al, /*flags=*/true);
    a.b("loop", isa::Cond::Ne);
    a.halt();
    return a.finish();
}

std::string
runLoop(size_t decode_slots)
{
    Machine m;
    m.cpu.setDecodeCache(decode_slots);
    m.cpu.loadProgram(loopProgram(0x8000, 300));
    m.cpu.setPc(0x8000);
    m.cpu.run();
    return serialize(m.buffer.trace());
}

} // namespace

/**
 * The decode cache is invisible at every geometry: disabled, shipped
 * default, and a 2-slot cache where the loop body aliases every slot
 * and evicts constantly.
 */
TEST(DecodeCache, GeometryDifferentialAgainstUncached)
{
    std::string reference = runLoop(0);
    EXPECT_EQ(runLoop(4096), reference);
    EXPECT_EQ(runLoop(2), reference);
    EXPECT_EQ(runLoop(1), reference);
}

/** Loading more code flushes cached decodes; old programs still run. */
TEST(DecodeCache, SurvivesAdditionalProgramLoads)
{
    // Reference: both programs run on an uncached machine.
    Machine ref;
    ref.cpu.setDecodeCache(0);
    ref.cpu.loadProgram(loopProgram(0x8000, 50));
    ref.cpu.setPc(0x8000);
    ref.cpu.run();
    ref.cpu.loadProgram(loopProgram(0x20000, 50));
    ref.cpu.setPc(0x20000);
    ref.cpu.run();
    ref.cpu.setPc(0x8000);
    ref.cpu.run();
    std::string expected = serialize(ref.buffer.trace());

    // Cached machine: warm the cache on A, load B (flush), rerun both.
    Machine m;
    m.cpu.setDecodeCache(8); // tiny: loads force aliasing too
    m.cpu.loadProgram(loopProgram(0x8000, 50));
    m.cpu.setPc(0x8000);
    m.cpu.run();
    m.cpu.loadProgram(loopProgram(0x20000, 50));
    m.cpu.setPc(0x20000);
    m.cpu.run();
    m.cpu.setPc(0x8000);
    m.cpu.run();
    EXPECT_EQ(serialize(m.buffer.trace()), expected);
}

/** Resizing or disabling the cache between runs stays equivalent. */
TEST(DecodeCache, ReconfigureBetweenRuns)
{
    Machine ref;
    ref.cpu.setDecodeCache(0);
    ref.cpu.loadProgram(loopProgram(0x8000, 40));
    for (int i = 0; i < 3; ++i) {
        ref.cpu.setPc(0x8000);
        ref.cpu.run();
    }
    std::string expected = serialize(ref.buffer.trace());

    Machine m;
    m.cpu.loadProgram(loopProgram(0x8000, 40));
    m.cpu.setDecodeCache(64);
    m.cpu.setPc(0x8000);
    m.cpu.run();
    m.cpu.setDecodeCache(0); // drop to uncached mid-sequence
    m.cpu.setPc(0x8000);
    m.cpu.run();
    m.cpu.setDecodeCache(4); // re-enable, cold
    m.cpu.setPc(0x8000);
    m.cpu.run();
    EXPECT_EQ(serialize(m.buffer.trace()), expected);
}
