/**
 * @file
 * Unit tests for the bytecode definition and the method builder:
 * format metadata, encoding layouts, label fixups, the Dex registry
 * and the Table 1 distance annotations.
 */

#include <gtest/gtest.h>

#include "dalvik/bytecode.hh"
#include "dalvik/method.hh"

using namespace pift;
using namespace pift::dalvik;

TEST(Bytecode, EveryOpcodeHasFormatNameAndUnits)
{
    for (unsigned op = 0; op < num_bytecodes; ++op) {
        Bc bc = static_cast<Bc>(op);
        EXPECT_STRNE(bcName(bc), "?") << op;
        unsigned units = unitCount(bc);
        EXPECT_GE(units, 1u) << bcName(bc);
        EXPECT_LE(units, 3u) << bcName(bc);
    }
}

TEST(Bytecode, FormatUnitCounts)
{
    EXPECT_EQ(unitCount(Bc::Nop), 1u);
    EXPECT_EQ(unitCount(Bc::Move), 1u);
    EXPECT_EQ(unitCount(Bc::Const16), 2u);
    EXPECT_EQ(unitCount(Bc::Aget), 2u);
    EXPECT_EQ(unitCount(Bc::IfEq), 2u);
    EXPECT_EQ(unitCount(Bc::InvokeStatic), 3u);
}

TEST(Bytecode, Table1Annotations)
{
    // The key rows of Table 1.
    EXPECT_EQ(expectedDistance(Bc::Return), 1);
    EXPECT_EQ(expectedDistance(Bc::MoveResult), 2);
    EXPECT_EQ(expectedDistance(Bc::Aget), 2);
    EXPECT_EQ(expectedDistance(Bc::Move), 3);
    EXPECT_EQ(expectedDistance(Bc::SgetObject), 3);
    EXPECT_EQ(expectedDistance(Bc::Iput), 4);
    EXPECT_EQ(expectedDistance(Bc::Iget), 5);
    EXPECT_EQ(expectedDistance(Bc::AddIntLit8), 5);
    EXPECT_EQ(expectedDistance(Bc::MulInt2Addr), 5);
    EXPECT_EQ(expectedDistance(Bc::IntToChar), 6);
    EXPECT_EQ(expectedDistance(Bc::AputObject), 10);
    EXPECT_EQ(expectedDistance(Bc::MulLong), 10);
    EXPECT_EQ(expectedDistance(Bc::DivInt), -2);
    EXPECT_EQ(expectedDistance(Bc::AddFloat2Addr), -2);
    EXPECT_EQ(expectedDistance(Bc::Goto), -1);
    EXPECT_EQ(expectedDistance(Bc::InvokeVirtual), -1);
    EXPECT_EQ(movesData(Bc::Move), true);
    EXPECT_EQ(movesData(Bc::Nop), false);
}

TEST(MethodBuilderTest, EncodingLayouts)
{
    MethodBuilder b("enc", 16, 0);
    b.move(3, 4);                 // F12x: op | A<<8 | B<<12
    b.const4(2, -3);              // F11n: signed nibble
    b.const16(7, -2);             // F21s
    b.moveFrom16(9, 300);         // F22x
    b.aget(1, 2, 3);              // F23x
    b.addIntLit8(1, 2, -5);       // F22b
    b.iget(3, 4, 8);              // F22c
    b.invokeStatic(77, 2, 5);     // F3rc
    Method m = b.finish();

    ASSERT_EQ(m.code.size(), 1u + 1 + 2 + 2 + 2 + 2 + 2 + 3);
    size_t i = 0;
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::Move) | (3 << 8) | (4 << 12));
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::Const4) | (2 << 8) |
                  ((static_cast<uint16_t>(-3) & 0xf) << 12));
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::Const16) | (7 << 8));
    EXPECT_EQ(m.code[i++], static_cast<uint16_t>(-2));
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::MoveFrom16) | (9 << 8));
    EXPECT_EQ(m.code[i++], 300u);
    EXPECT_EQ(m.code[i++], static_cast<uint16_t>(Bc::Aget) | (1 << 8));
    EXPECT_EQ(m.code[i++], 2u | (3 << 8));
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::AddIntLit8) | (1 << 8));
    EXPECT_EQ(m.code[i++],
              2u | ((static_cast<uint16_t>(-5) & 0xff) << 8));
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::Iget) | (3 << 8) | (4 << 12));
    EXPECT_EQ(m.code[i++], 8u);
    EXPECT_EQ(m.code[i++],
              static_cast<uint16_t>(Bc::InvokeStatic) | (2 << 8));
    EXPECT_EQ(m.code[i++], 77u);
    EXPECT_EQ(m.code[i++], 5u);
}

TEST(MethodBuilderTest, BranchOffsetsInCodeUnits)
{
    MethodBuilder b("branches", 8, 0);
    b.label("top");            // unit 0
    b.nop();                   // unit 0
    b.ifEqz(1, "fwd");         // units 1-2
    b.gotoLabel("top");        // unit 3
    b.label("fwd");            // unit 4
    b.returnVoid();
    Method m = b.finish();

    // if-eqz at unit 1: offset to unit 4 = +3 in unit1.
    EXPECT_EQ(m.code[2], 3u);
    // goto at unit 3: offset to unit 0 = -3 in the high byte.
    EXPECT_EQ(m.code[3] >> 8, static_cast<uint16_t>(-3) & 0xff);
}

TEST(MethodBuilderTest, CatchOffsetRecorded)
{
    MethodBuilder b("catcher", 8, 0);
    b.nop();
    b.nop();
    b.catchHere();
    b.returnVoid();
    Method m = b.finish();
    EXPECT_EQ(m.catch_offset, 2);
}

TEST(MethodBuilderTest, DanglingLabelPanics)
{
    MethodBuilder b("bad", 8, 0);
    b.gotoLabel("nowhere");
    EXPECT_DEATH(b.finish(), "dangling");
}

TEST(MethodBuilderTest, NibbleRangeChecked)
{
    MethodBuilder b("bad2", 32, 0);
    EXPECT_DEATH(b.move(16, 2), "nibble");
}

TEST(DexTest, MethodRegistryAndLookup)
{
    Dex dex;
    MethodBuilder b("Cls.method", 4, 1);
    b.returnValue(3);
    MethodId id = dex.addMethod(b.finish());
    EXPECT_EQ(dex.findMethod("Cls.method"), id);
    EXPECT_EQ(dex.method(id).nregs, 4);
    EXPECT_DEATH(dex.findMethod("missing"), "unknown method");
}

TEST(DexTest, DuplicateNamesRejected)
{
    Dex dex;
    MethodBuilder a("dup", 4, 0);
    a.returnVoid();
    dex.addMethod(a.finish());
    MethodBuilder b("dup", 4, 0);
    b.returnVoid();
    EXPECT_DEATH(dex.addMethod(b.finish()), "duplicate");
}

TEST(DexTest, StringPoolInterns)
{
    Dex dex;
    uint16_t a = dex.addString("imei");
    uint16_t b = dex.addString("phone");
    uint16_t c = dex.addString("imei");
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    EXPECT_EQ(dex.stringPool().size(), 2u);
}

TEST(DexTest, WellKnownClasses)
{
    Dex dex;
    EXPECT_EQ(dex.classInfo(dex.stringClass()).elem_bytes, 2u);
    EXPECT_EQ(dex.classInfo(dex.charArrayClass()).elem_bytes, 2u);
    EXPECT_EQ(dex.classInfo(dex.intArrayClass()).elem_bytes, 4u);
    EXPECT_EQ(dex.classInfo(dex.objectClass()).elem_bytes, 0u);
}

TEST(DexTest, StaticsAllocation)
{
    Dex dex;
    EXPECT_EQ(dex.addStatic("a"), 0u);
    EXPECT_EQ(dex.addStatic("b"), 1u);
    EXPECT_EQ(dex.staticCount(), 2u);
}

TEST(DexTest, NativeRegistration)
{
    Dex dex;
    MethodId id = dex.addNative("nat", 2,
                                [](Vm &, const NativeCall &) {});
    EXPECT_TRUE(dex.method(id).is_native);
    EXPECT_EQ(dex.method(id).nins, 2);
    EXPECT_TRUE(static_cast<bool>(dex.method(id).native));

    NativeCall call;
    call.args_base = 0x7000'0010;
    call.argc = 2;
    EXPECT_EQ(call.arg_addr(0), 0x7000'0010u);
    EXPECT_EQ(call.arg_addr(1), 0x7000'0014u);
}
