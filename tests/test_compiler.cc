/**
 * @file
 * Tests for the PIFT-aware compiler pass (Section 7 follow-up):
 * basic-block detection, dead-code elimination, load-store
 * tightening, semantic preservation by differential execution, and
 * the end-to-end defeat of the Section 4.2 native-code evasion.
 */

#include <gtest/gtest.h>

#include <array>

#include "compiler/scheduler.hh"
#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/cpu.hh"
#include "support/rng.hh"

using namespace pift;
using namespace pift::isa;
using compiler::optimizeForPift;
using compiler::worstLoadStoreDistance;

namespace
{

/** The Section 4.2 attack: dummy ALU padding inside the copy loop. */
Program
evasionCopyLoop(Addr base, int padding)
{
    Assembler a(base);
    a.label("loop");
    a.ldrh(6, memOff(1, 2, WriteBack::Post));
    for (int i = 0; i < padding; ++i) {
        switch (i % 3) {
          case 0: a.add(7, 7, imm(1)); break;
          case 1: a.eor(3, 7, reg(3)); break;
          default: a.mov(2, regLsr(3, 1)); break;
        }
    }
    a.strh(6, memOff(0, 2, WriteBack::Post));
    a.subs(5, 5, imm(1));
    a.b("loop", Cond::Ne);
    a.bx(14);
    return a.finish();
}

/** Execute a copy program and return final registers + copied text. */
struct RunResult
{
    std::array<uint32_t, 13> regs{};
    std::string copied;
};

RunResult
runCopy(const Program &prog, const std::string &text)
{
    mem::Memory memory;
    sim::EventHub hub;
    sim::Cpu cpu(memory, hub);
    cpu.loadProgram(prog);
    memory.writeString16(0x4100'0000, text);
    cpu.setReg(0, 0x4200'0000);
    cpu.setReg(1, 0x4100'0000);
    cpu.setReg(5, static_cast<uint32_t>(text.size()));
    cpu.call(prog.base);
    RunResult r;
    for (RegIndex i = 0; i < 13; ++i)
        r.regs[i] = cpu.reg(i);
    r.copied = memory.readString16(0x4200'0000, text.size());
    return r;
}

} // namespace

TEST(Scheduler, BlockLeaders)
{
    Assembler a(0x8000);
    a.nop();                  // 0
    a.label("target");        // 1 is a leader (label + branch target)
    a.nop();
    a.b("target");            // 2: control -> 3 is a leader
    a.nop();                  // 3
    a.nop();
    Program p = a.finish();
    auto leaders = compiler::blockLeaders(p);
    EXPECT_EQ(leaders, (std::vector<size_t>{0, 1, 3}));
}

TEST(Scheduler, WorstDistanceTracksThroughAlu)
{
    // ldr r1; mul r2 <- r1; ...; str r2: the dependence flows through
    // the multiply.
    Assembler a(0x8000);
    a.ldr(1, memOff(10, 0));     // 0
    a.mul(2, 1, 1);              // 1
    a.add(7, 7, imm(1));         // 2 (unrelated)
    a.add(7, 7, imm(1));         // 3
    a.str(2, memOff(11, 0));     // 4
    a.bx(14);
    Program p = a.finish();
    EXPECT_EQ(worstLoadStoreDistance(p), 4);
}

TEST(Scheduler, NoDependentPair)
{
    Assembler a(0x8000);
    a.ldr(1, memOff(10, 0));
    a.str(2, memOff(11, 0));  // stores r2, not derived from r1
    a.bx(14);
    Program p = a.finish();
    EXPECT_EQ(worstLoadStoreDistance(p), -1);
}

TEST(Scheduler, DeadCodeElimination)
{
    // r3 is computed and overwritten before any use: dead.
    Assembler a(0x8000);
    a.ldr(1, memOff(10, 0));
    a.add(3, 1, imm(5));      // dead
    a.movi(3, 0);             // kills r3
    a.str(1, memOff(11, 0));
    a.str(3, memOff(11, 4));
    a.bx(14);
    Program p = a.finish();
    auto stats = optimizeForPift(p);
    EXPECT_GE(stats.dead_eliminated, 1u);
    // The dead add is gone entirely (nop'ed, then scheduled away).
    for (const auto &inst : p.insts)
        EXPECT_NE(inst.op, Op::Add);
}

TEST(Scheduler, LiveValueNotEliminated)
{
    Assembler a(0x8000);
    a.add(3, 1, imm(5));
    a.str(3, memOff(11, 0));  // r3 used
    a.bx(14);
    Program p = a.finish();
    auto stats = optimizeForPift(p);
    EXPECT_EQ(stats.dead_eliminated, 0u);
    EXPECT_EQ(p.insts[0].op, Op::Add);
}

TEST(Scheduler, FlagProducersAndConsumersPinned)
{
    // cmp/conditional pairs must never move or die.
    Assembler a(0x8000);
    a.ldrh(6, memOff(1, 0));
    a.cmp(5, imm(0));
    a.movi(2, 1, Cond::Eq);
    a.strh(6, memOff(0, 0));
    a.bx(14);
    Program p = a.finish();
    Program before = p;
    optimizeForPift(p);
    EXPECT_EQ(p.insts[1].op, Op::Cmp);
    EXPECT_EQ(p.insts[2].cond, Cond::Eq);
}

TEST(Scheduler, TightensEvasionPadding)
{
    Program p = evasionCopyLoop(0x8000, 20);
    EXPECT_EQ(worstLoadStoreDistance(p), 21);
    auto stats = optimizeForPift(p);
    EXPECT_EQ(worstLoadStoreDistance(p), 1);
    EXPECT_GT(stats.moved, 0u);
    EXPECT_GE(stats.pairs_tightened, 1u);
    // The program shape is preserved (same instruction count).
    EXPECT_EQ(p.insts.size(), evasionCopyLoop(0x8000, 20).insts.size());
}

TEST(Scheduler, OptimizedCopyStillCopiesCorrectly)
{
    Program original = evasionCopyLoop(0x8000, 20);
    Program optimized = evasionCopyLoop(0x8000, 20);
    optimizeForPift(optimized);

    auto a = runCopy(original, "sensitive-imei-35693");
    auto b = runCopy(optimized, "sensitive-imei-35693");
    EXPECT_EQ(b.copied, "sensitive-imei-35693");
    // All architectural state the routine defines must agree.
    EXPECT_EQ(a.regs, b.regs);
}

TEST(Scheduler, DifferentialExecutionOnRandomPrograms)
{
    // Random straight-line programs over ALU + fixed-base memory ops:
    // the optimized program must compute identical registers and
    // identical destination memory.
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        Assembler a(0x8000);
        for (int i = 0; i < 40; ++i) {
            RegIndex rd = static_cast<RegIndex>(2 + rng.below(7));
            RegIndex rn = static_cast<RegIndex>(2 + rng.below(7));
            switch (rng.below(6)) {
              case 0:
                a.add(rd, rn, imm(static_cast<int32_t>(
                    rng.below(100))));
                break;
              case 1:
                a.eor(rd, rn,
                      reg(static_cast<RegIndex>(2 + rng.below(7))));
                break;
              case 2:
                a.mov(rd, regLsr(rn,
                                 static_cast<uint8_t>(rng.below(8))));
                break;
              case 3:
                a.ldr(rd, memOff(10, static_cast<int32_t>(
                    4 * rng.below(8))));
                break;
              case 4:
                a.str(rn, memOff(11, static_cast<int32_t>(
                    4 * rng.below(8))));
                break;
              default:
                a.mul(rd, rn,
                      static_cast<RegIndex>(2 + rng.below(7)));
                break;
            }
        }
        a.bx(14);
        Program original = a.finish();
        Program optimized = original;
        optimizeForPift(optimized);

        auto run = [](const Program &prog) {
            mem::Memory memory;
            sim::EventHub hub;
            sim::Cpu cpu(memory, hub);
            cpu.loadProgram(prog);
            for (Addr i = 0; i < 8; ++i)
                memory.write32(0x4100'0000 + 4 * i, 0x1111 * (i + 1));
            cpu.setReg(10, 0x4100'0000);
            cpu.setReg(11, 0x4200'0000);
            for (RegIndex r = 2; r < 9; ++r)
                cpu.setReg(r, 100 + r);
            cpu.call(prog.base);
            std::array<uint32_t, 9> regs{};
            for (RegIndex r = 0; r < 9; ++r)
                regs[r] = cpu.reg(r);
            std::array<uint32_t, 8> memout{};
            for (Addr i = 0; i < 8; ++i)
                memout[i] = memory.read32(0x4200'0000 + 4 * i);
            return std::make_pair(regs, memout);
        };

        auto ra = run(original);
        auto rb = run(optimized);
        // Dead code may legitimately change registers that are never
        // observed; destination memory is the observable contract.
        EXPECT_EQ(ra.second, rb.second) << "seed " << seed;
    }
}

TEST(Scheduler, EvasionDefeatedUnderPift)
{
    // End to end: the padded copy evades a (13,3) window; after the
    // compiler pass the same program is caught.
    auto detect = [](Program prog) {
        mem::Memory memory;
        sim::EventHub hub;
        sim::Cpu cpu(memory, hub);
        core::IdealRangeStore store;
        core::PiftTracker tracker({13, 3, true}, store);
        hub.addSink(&tracker);
        cpu.loadProgram(prog);

        memory.writeString16(0x4100'0000, "356938035643809");
        sim::ControlEvent src;
        src.seq = hub.recordCount();
        src.pid = cpu.pid();
        src.kind = sim::ControlKind::RegisterSource;
        src.start = 0x4100'0000;
        src.end = 0x4100'0000 + 29;
        hub.publish(src);

        cpu.setReg(0, 0x4200'0000);
        cpu.setReg(1, 0x4100'0000);
        cpu.setReg(5, 15);
        cpu.call(prog.base);

        sim::ControlEvent sink;
        sink.seq = hub.recordCount();
        sink.pid = cpu.pid();
        sink.kind = sim::ControlKind::CheckSink;
        sink.start = 0x4200'0000;
        sink.end = 0x4200'0000 + 29;
        hub.publish(sink);
        return tracker.anyLeak();
    };

    Program evading = evasionCopyLoop(0x9000, 20);
    EXPECT_FALSE(detect(evading));

    Program defended = evasionCopyLoop(0x9000, 20);
    optimizeForPift(defended);
    EXPECT_TRUE(detect(defended));
}
