/**
 * @file
 * Unit tests for the CPU model: ALU semantics, flags and condition
 * codes (parameterized sweeps), addressing modes with writeback,
 * branches, load/store multiple, SVC trapping, per-process counters
 * and re-entrant subroutine calls.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/cpu.hh"
#include "sim/trace.hh"

using namespace pift;
using namespace pift::isa;
using sim::Cpu;
using sim::EventHub;
using sim::TraceBuffer;

namespace
{

struct Machine
{
    Machine() : cpu(memory, hub) { hub.addSink(&buffer); }

    /** Load a program at 0x8000 and run it to the Halt. */
    void
    run(Assembler &a)
    {
        a.halt();
        cpu.loadProgram(a.finish());
        cpu.setPc(0x8000);
        cpu.run();
    }

    mem::Memory memory;
    EventHub hub;
    TraceBuffer buffer;
    Cpu cpu;
};

} // namespace

struct AluCase
{
    const char *name;
    std::function<void(Assembler &)> emit;
    uint32_t r1, r2;      // initial r1, r2
    uint32_t expect_r0;   // result in r0
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{};

TEST_P(AluSemantics, ComputesExpectedResult)
{
    const AluCase &c = GetParam();
    Machine m;
    Assembler a(0x8000);
    c.emit(a);
    m.cpu.setReg(1, c.r1);
    m.cpu.setReg(2, c.r2);
    m.run(a);
    EXPECT_EQ(m.cpu.reg(0), c.expect_r0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemantics,
    ::testing::Values(
        AluCase{"mov_imm", [](Assembler &a) { a.movi(0, 42); },
                0, 0, 42},
        AluCase{"mov_reg", [](Assembler &a) { a.mov(0, reg(1)); },
                7, 0, 7},
        AluCase{"mov_lsl", [](Assembler &a) { a.mov(0, regLsl(1, 4)); },
                3, 0, 48},
        AluCase{"mov_lsr", [](Assembler &a) { a.mov(0, regLsr(1, 12)); },
                0xabcd1234, 0, 0xabcd1},
        AluCase{"mvn", [](Assembler &a) { a.mvn(0, reg(1)); },
                0x0f0f0f0f, 0, 0xf0f0f0f0},
        AluCase{"add", [](Assembler &a) { a.add(0, 1, reg(2)); },
                10, 32, 42},
        AluCase{"add_shifted",
                [](Assembler &a) { a.add(0, 1, regLsl(2, 2)); },
                100, 5, 120},
        AluCase{"sub", [](Assembler &a) { a.sub(0, 1, reg(2)); },
                50, 8, 42},
        AluCase{"sub_wraps", [](Assembler &a) { a.sub(0, 1, reg(2)); },
                0, 1, 0xffffffff},
        AluCase{"rsb", [](Assembler &a) { a.rsb(0, 1, imm(100)); },
                58, 0, 42},
        AluCase{"mul", [](Assembler &a) { a.mul(0, 1, 2); },
                6, 7, 42},
        AluCase{"and", [](Assembler &a) { a.and_(0, 1, imm(255)); },
                0x1234, 0, 0x34},
        AluCase{"orr", [](Assembler &a) { a.orr(0, 1, reg(2)); },
                0xf0, 0x0f, 0xff},
        AluCase{"eor", [](Assembler &a) { a.eor(0, 1, reg(2)); },
                0xff, 0x0f, 0xf0},
        AluCase{"bic", [](Assembler &a) { a.bic(0, 1, imm(0xf)); },
                0xff, 0, 0xf0},
        AluCase{"lsl_reg", [](Assembler &a) { a.lsl(0, 1, reg(2)); },
                1, 5, 32},
        AluCase{"lsr_imm", [](Assembler &a) { a.lsr(0, 1, imm(8)); },
                0xaabbcc, 0, 0xaabb},
        AluCase{"asr_negative",
                [](Assembler &a) { a.asr(0, 1, imm(4)); },
                0xffffff00, 0, 0xfffffff0},
        AluCase{"ubfx", [](Assembler &a) { a.ubfx(0, 1, 8, 4); },
                0x0000ab00, 0, 0xb},
        AluCase{"sbfx_signext",
                [](Assembler &a) { a.sbfx(0, 1, 12, 4); },
                0x0000f000, 0, 0xffffffff},
        AluCase{"sxth", [](Assembler &a) { a.sxth(0, 1); },
                0x1234ffff, 0, 0xffffffff},
        AluCase{"uxth", [](Assembler &a) { a.uxth(0, 1); },
                0x1234abcd, 0, 0xabcd},
        AluCase{"uxtb", [](Assembler &a) { a.uxtb(0, 1); },
                0x123456ff, 0, 0xff}),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return info.param.name;
    });

struct CondCase
{
    const char *name;
    Cond cond;
    uint32_t lhs, rhs;  // cmp lhs, rhs
    bool taken;
};

class ConditionCodes : public ::testing::TestWithParam<CondCase>
{};

TEST_P(ConditionCodes, BranchFollowsFlags)
{
    const CondCase &c = GetParam();
    Machine m;
    Assembler a(0x8000);
    a.cmp(1, reg(2));
    a.movi(0, 0);
    a.b("taken", c.cond);
    a.halt();
    a.label("taken");
    a.movi(0, 1);
    m.cpu.setReg(1, c.lhs);
    m.cpu.setReg(2, c.rhs);
    m.run(a);
    EXPECT_EQ(m.cpu.reg(0), c.taken ? 1u : 0u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, ConditionCodes,
    ::testing::Values(
        CondCase{"eq_equal", Cond::Eq, 5, 5, true},
        CondCase{"eq_unequal", Cond::Eq, 5, 6, false},
        CondCase{"ne", Cond::Ne, 5, 6, true},
        CondCase{"cs_unsigned_ge", Cond::Cs, 6, 5, true},
        CondCase{"cc_unsigned_lt", Cond::Cc, 4, 5, true},
        CondCase{"mi_negative", Cond::Mi, 3, 5, true},
        CondCase{"pl_positive", Cond::Pl, 7, 5, true},
        CondCase{"ge_signed", Cond::Ge, 5, 5, true},
        CondCase{"ge_negative_rhs", Cond::Ge, 1,
                 static_cast<uint32_t>(-1), true},
        CondCase{"lt_signed", Cond::Lt, static_cast<uint32_t>(-2), 1,
                 true},
        CondCase{"gt_strict", Cond::Gt, 6, 5, true},
        CondCase{"gt_equal_not", Cond::Gt, 5, 5, false},
        CondCase{"le_equal", Cond::Le, 5, 5, true},
        CondCase{"le_greater_not", Cond::Le, 6, 5, false}),
    [](const ::testing::TestParamInfo<CondCase> &info) {
        return info.param.name;
    });

TEST(CpuMemory, AddressingModes)
{
    Machine m;
    m.memory.write32(0x1000, 0x11111111);
    m.memory.write32(0x1004, 0x22222222);
    m.memory.write16(0x1008, 0x3333);

    Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(3, 1);
    a.ldr(0, memOff(5, 4));        // offset
    a.ldr(1, memIdx(5, 3, 2));     // base + (index << 2)
    a.ldrh(2, memOff(5, 8));
    m.run(a);
    EXPECT_EQ(m.cpu.reg(0), 0x22222222u);
    EXPECT_EQ(m.cpu.reg(1), 0x22222222u);
    EXPECT_EQ(m.cpu.reg(2), 0x3333u);
}

TEST(CpuMemory, PreIndexWritebackIsFetchAdvance)
{
    // ldrh r7, [r4, #2]! — the mterp FETCH_ADVANCE_INST.
    Machine m;
    m.memory.write16(0x2002, 0xbeef);
    Assembler a(0x8000);
    a.movi(4, 0x2000);
    a.ldrh(7, memOff(4, 2, WriteBack::Pre));
    m.run(a);
    EXPECT_EQ(m.cpu.reg(7), 0xbeefu);
    EXPECT_EQ(m.cpu.reg(4), 0x2002u); // base updated to the EA
}

TEST(CpuMemory, PostIndexWriteback)
{
    Machine m;
    m.memory.write16(0x2000, 0x1111);
    Assembler a(0x8000);
    a.movi(4, 0x2000);
    a.ldrh(7, memOff(4, 2, WriteBack::Post));
    m.run(a);
    EXPECT_EQ(m.cpu.reg(7), 0x1111u); // accessed at the old base
    EXPECT_EQ(m.cpu.reg(4), 0x2002u);
}

TEST(CpuMemory, LoadStorePair)
{
    Machine m;
    Assembler a(0x8000);
    a.movi(5, 0x3000);
    a.movi(0, 0x1111);
    a.movi(1, 0x2222);
    a.strd(0, memOff(5, 0));
    a.ldrd(2, memOff(5, 0));
    m.run(a);
    EXPECT_EQ(m.memory.read32(0x3000), 0x1111u);
    EXPECT_EQ(m.memory.read32(0x3004), 0x2222u);
    EXPECT_EQ(m.cpu.reg(2), 0x1111u);
    EXPECT_EQ(m.cpu.reg(3), 0x2222u);
}

TEST(CpuMemory, LoadStoreMultipleWithWriteback)
{
    Machine m;
    Assembler a(0x8000);
    a.movi(10, 0x4000);
    a.movi(4, 0xa);
    a.movi(5, 0xb);
    a.movi(6, 0xc);
    a.stm(10, 4, 3);
    a.movi(4, 0);
    a.movi(5, 0);
    a.movi(6, 0);
    a.movi(10, 0x4000);
    a.ldm(10, 4, 3);
    m.run(a);
    EXPECT_EQ(m.cpu.reg(4), 0xau);
    EXPECT_EQ(m.cpu.reg(5), 0xbu);
    EXPECT_EQ(m.cpu.reg(6), 0xcu);
    EXPECT_EQ(m.cpu.reg(10), 0x400cu); // writeback after ldm
}

TEST(CpuControl, ComputedDispatchViaPcWrite)
{
    // add pc, r8, r12, lsl #7 — the mterp GOTO_OPCODE.
    Machine m;
    Assembler table(0x9000);
    table.movi(0, 111).halt();
    m.cpu.loadProgram(table.finish());
    Assembler slot1(0x9080);
    slot1.movi(0, 222).halt();
    m.cpu.loadProgram(slot1.finish());

    Assembler a(0x8000);
    a.movi(8, 0x9000);
    a.movi(12, 1);
    a.add(15, 8, regLsl(12, 7));
    a.halt(); // skipped by the pc write
    m.cpu.loadProgram(a.finish());
    m.cpu.setPc(0x8000);
    m.cpu.run();
    EXPECT_EQ(m.cpu.reg(0), 222u);
}

TEST(CpuControl, BranchAndLinkSetsLr)
{
    Machine m;
    Assembler sub(0x9000);
    sub.movi(0, 7);
    sub.bx(14);
    m.cpu.loadProgram(sub.finish());

    Assembler a(0x8000);
    a.blAbs(0x9000);
    a.add(0, 0, imm(1));
    m.run(a);
    EXPECT_EQ(m.cpu.reg(0), 8u);
}

TEST(CpuControl, ConditionalMemoryOpSkippedWithoutAccess)
{
    Machine m;
    m.memory.write32(0x1000, 0xdead);
    Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(0, 0);
    a.cmp(0, imm(1));                 // not equal
    a.ldr(1, memOff(5, 0), Cond::Eq); // must not execute
    m.run(a);
    EXPECT_EQ(m.cpu.reg(1), 0u);
    // The failed-condition instruction retires without a mem access.
    bool saw_load = false;
    for (const auto &rec : m.buffer.trace().records)
        if (rec.mem_kind == sim::MemKind::Load)
            saw_load = true;
    EXPECT_FALSE(saw_load);
}

TEST(CpuTrace, RecordsCarryOperandsAndRanges)
{
    Machine m;
    Assembler a(0x8000);
    a.movi(5, 0x1000);
    a.movi(6, 0xab);
    a.strh(6, memOff(5, 4));
    m.run(a);
    const auto &recs = m.buffer.trace().records;
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[2].op, Op::Strh);
    EXPECT_EQ(recs[2].mem_kind, sim::MemKind::Store);
    EXPECT_EQ(recs[2].mem_start, 0x1004u);
    EXPECT_EQ(recs[2].mem_end, 0x1005u);
    EXPECT_EQ(recs[2].src[0], 6);
    EXPECT_EQ(recs[2].seq, 2u);
    EXPECT_EQ(recs[2].pid, 1u);
}

TEST(CpuTrace, PerProcessInstructionCounters)
{
    Machine m;
    Assembler a(0x8000);
    a.nop().nop().nop().halt();
    m.cpu.loadProgram(a.finish());

    m.cpu.setPid(10);
    m.cpu.setPc(0x8000);
    m.cpu.run();
    m.cpu.setPid(20);
    m.cpu.setPc(0x8000);
    m.cpu.run();
    m.cpu.setPc(0x8000);
    m.cpu.run();

    EXPECT_EQ(m.cpu.localCount(10), 3u);
    EXPECT_EQ(m.cpu.localCount(20), 6u);
    EXPECT_EQ(m.cpu.localCount(99), 0u);
    // local_seq restarts per pid in the trace records.
    const auto &recs = m.buffer.trace().records;
    ASSERT_EQ(recs.size(), 9u);
    EXPECT_EQ(recs[0].local_seq, 0u);
    EXPECT_EQ(recs[3].pid, 20u);
    EXPECT_EQ(recs[3].local_seq, 0u);
    EXPECT_EQ(recs[8].local_seq, 5u);
}

TEST(CpuSvc, HandlerRunsAndCanNest)
{
    Machine m;
    Assembler sub(0x9000);
    sub.add(0, 0, imm(100));
    sub.bx(14);
    m.cpu.loadProgram(sub.finish());

    int traps = 0;
    m.cpu.setSvcHandler([&](Cpu &cpu, uint32_t num) {
        ++traps;
        EXPECT_EQ(num, 42u);
        cpu.call(0x9000); // nested execution inside the trap
    });

    Assembler a(0x8000);
    a.movi(0, 1);
    a.svc(42);
    a.add(0, 0, imm(10)); // continues after the trap
    m.run(a);
    EXPECT_EQ(traps, 1);
    EXPECT_EQ(m.cpu.reg(0), 111u);
}

TEST(CpuSvc, SvcRecordCarriesNumber)
{
    Machine m;
    m.cpu.setSvcHandler([](Cpu &, uint32_t) {});
    Assembler a(0x8000);
    a.svc(17);
    m.run(a);
    EXPECT_EQ(m.buffer.trace().records[0].aux, 17u);
}

TEST(CpuGuards, UnmappedFetchPanics)
{
    Machine m;
    m.cpu.setPc(0xdead0000);
    EXPECT_DEATH(m.cpu.run(), "unmapped");
}

TEST(CpuGuards, RunawayBudgetPanics)
{
    Machine m;
    Assembler a(0x8000);
    a.label("spin");
    a.b("spin");
    m.cpu.loadProgram(a.finish());
    m.cpu.setPc(0x8000);
    EXPECT_DEATH(m.cpu.run(1000), "budget");
}

TEST(CpuGuards, OverlappingProgramsRejected)
{
    Machine m;
    Assembler a(0x8000);
    a.nop().nop();
    m.cpu.loadProgram(a.finish());
    Assembler b(0x8004);
    b.nop();
    EXPECT_DEATH(m.cpu.loadProgram(b.finish()), "overlap");
}
