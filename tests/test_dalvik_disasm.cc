/**
 * @file
 * Tests for the Dalvik disassembler: Figure 7 listing shapes, every
 * format family, and a decode sweep over every method the whole
 * benchmark corpus registers (no panic, exact unit accounting).
 */

#include <gtest/gtest.h>

#include "dalvik/disasm.hh"
#include "droidbench/app.hh"

using namespace pift;
using namespace pift::dalvik;

TEST(DalvikDisasm, Figure7BarListing)
{
    // int bar(int x, int y) { return 2*x + y; } — the paper's Figure
    // 7 bytecode panel.
    MethodBuilder b("bar", 8, 2);
    b.const4(3, 2)
        .move(4, 6)
        .binop2addr(Bc::MulInt2Addr, 3, 4)
        .move(4, 7)
        .binop2addr(Bc::AddInt2Addr, 3, 4)
        .move(0, 3)
        .returnValue(0);
    Method m = b.finish();
    std::string text = disassemble(m);
    EXPECT_NE(text.find("const/4 v3, #int 2"), std::string::npos);
    EXPECT_NE(text.find("mul-int/2addr v3, v4"), std::string::npos);
    EXPECT_NE(text.find("add-int/2addr v3, v4"), std::string::npos);
    EXPECT_NE(text.find("move v0, v3"), std::string::npos);
    EXPECT_NE(text.find("return v0"), std::string::npos);
}

TEST(DalvikDisasm, AllFormatFamilies)
{
    MethodBuilder b("formats", 16, 0);
    b.nop();                              // F10x
    b.move(1, 2);                         // F12x
    b.const4(3, -4);                      // F11n
    b.moveResult(9);                      // F11x
    b.const16(5, -1000);                  // F21s
    b.constString(6, 3);                  // F21c
    b.moveFrom16(7, 300);                 // F22x
    b.aget(1, 2, 3);                      // F23x
    b.addIntLit8(4, 5, -6);               // F22b
    b.iget(1, 2, 8);                      // F22c
    b.invokeStatic(12, 2, 4);             // F3rc
    b.label("self");
    b.ifEqz(1, "self");                   // F21t
    b.ifEq(1, 2, "self");                 // F22t
    b.gotoLabel("self");                  // F10t
    b.returnVoid();
    Method m = b.finish();
    std::string text = disassemble(m);
    EXPECT_NE(text.find("move v1, v2"), std::string::npos);
    EXPECT_NE(text.find("const/4 v3, #int -4"), std::string::npos);
    EXPECT_NE(text.find("move-result v9"), std::string::npos);
    EXPECT_NE(text.find("const/16 v5, #int -1000"),
              std::string::npos);
    EXPECT_NE(text.find("const-string v6, @3"), std::string::npos);
    EXPECT_NE(text.find("move/from16 v7, v300"), std::string::npos);
    EXPECT_NE(text.find("aget v1, v2, v3"), std::string::npos);
    EXPECT_NE(text.find("add-int/lit8 v4, v5, #int -6"),
              std::string::npos);
    EXPECT_NE(text.find("iget v1, v2, field@8"), std::string::npos);
    EXPECT_NE(text.find("invoke-static {v4..v5}, method@12"),
              std::string::npos);
    // Offsets are relative to the branch's own first unit.
    EXPECT_NE(text.find("if-eqz v1, +0"), std::string::npos);
    EXPECT_NE(text.find("if-eq v1, v2, -2"), std::string::npos);
    EXPECT_NE(text.find("goto -4"), std::string::npos);
}

TEST(DalvikDisasm, NativeMethodsAnnotated)
{
    Dex dex;
    auto id = dex.addNative("Native.fn", 1,
                            [](Vm &, const NativeCall &) {});
    EXPECT_NE(disassemble(dex.method(id)).find("(native)"),
              std::string::npos);
}

TEST(DalvikDisasm, WholeCorpusDecodesCleanly)
{
    // Every method of every app (plus the runtime library) must
    // disassemble with exact unit accounting.
    for (const auto &entry : droidbench::droidBenchApps()) {
        droidbench::AppContext ctx;
        entry.declare(ctx);
        for (MethodId id = 0; id < ctx.dex.methodCount(); ++id) {
            const Method &m = ctx.dex.method(id);
            if (m.is_native)
                continue;
            std::string text = disassemble(m);
            EXPECT_FALSE(text.empty()) << m.name;
            // One listing line per instruction plus the header.
            size_t lines = std::count(text.begin(), text.end(), '\n');
            size_t insts = 0;
            size_t at = 0;
            while (at < m.code.size()) {
                unsigned units = 0;
                disassembleAt(m.code, at, units);
                at += units;
                ++insts;
            }
            EXPECT_EQ(lines, insts + 1) << m.name;
        }
    }
}
