/**
 * @file
 * Suite-level validation of the DroidBench-style apps and the malware
 * analogs: every app must execute cleanly, ground truth must agree
 * with the full-DIFT baseline (explicit flows), PIFT must reach 100%
 * at NI=18/NT=3 and 0 false positives everywhere, and the malware
 * must all be caught at the paper's NI=3/NT=2.
 */

#include <gtest/gtest.h>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"

using namespace pift;
using droidbench::AppEntry;
using droidbench::AppRun;
using droidbench::runApp;

namespace
{

/** Captured runs of the whole suite (computed once). */
struct SuiteRuns
{
    std::vector<std::pair<const AppEntry *, AppRun>> droidbench;
    std::vector<std::pair<const AppEntry *, AppRun>> malware;
};

const SuiteRuns &
suiteRuns()
{
    static const SuiteRuns runs = [] {
        SuiteRuns r;
        for (const auto &entry : droidbench::droidBenchApps())
            r.droidbench.emplace_back(&entry, runApp(entry));
        for (const auto &entry : droidbench::malwareApps())
            r.malware.emplace_back(&entry, runApp(entry));
        return r;
    }();
    return runs;
}

std::vector<analysis::LabelledTrace>
labelledSet()
{
    std::vector<analysis::LabelledTrace> set;
    for (const auto &[entry, run] : suiteRuns().droidbench)
        set.push_back({entry->name, entry->leaks, run.trace});
    return set;
}

} // namespace

TEST(DroidBench, SuiteShape)
{
    EXPECT_EQ(droidbench::droidBenchApps().size(), 57u);
    EXPECT_EQ(droidbench::malwareApps().size(), 7u);
}

TEST(DroidBench, AllAppsRunCleanly)
{
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        EXPECT_FALSE(run.uncaught) << entry->name;
        EXPECT_GT(run.trace.records.size(), 20u) << entry->name;
    }
    for (const auto &[entry, run] : suiteRuns().malware) {
        EXPECT_FALSE(run.uncaught) << entry->name;
    }
}

TEST(DroidBench, LeakyAppsActuallySendSensitivePayloads)
{
    // Host-side ground truth: every leaky app's sink payloads must be
    // non-empty; benign apps may call sinks but never with secret
    // content (checked via the IMEI/phone digits).
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        if (!entry->leaks)
            continue;
        bool any_sink = !run.sink_calls.empty();
        EXPECT_TRUE(any_sink) << entry->name;
    }
}

TEST(DroidBench, BaselineAgreesWithGroundTruthOnExplicitFlows)
{
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        if (entry->category == "ImplicitFlows") {
            // Classical DIFT cannot see control-dependence flows.
            EXPECT_FALSE(analysis::baselineDetectsLeak(run.trace))
                << entry->name;
            continue;
        }
        EXPECT_EQ(analysis::baselineDetectsLeak(run.trace),
                  entry->leaks)
            << entry->name;
    }
}

TEST(DroidBench, PiftPerfectAtWideWindow)
{
    core::PiftParams params;
    params.ni = 18;
    params.nt = 3;
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        EXPECT_EQ(analysis::piftDetectsLeak(run.trace, params),
                  entry->leaks)
            << entry->name;
    }
}

TEST(DroidBench, NoFalsePositivesAnywhere)
{
    // The paper reports zero false positives over every parameter
    // combination; sweep all 200.
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        if (entry->leaks)
            continue;
        for (unsigned nt = 1; nt <= 10; ++nt) {
            for (unsigned ni = 1; ni <= 20; ++ni) {
                core::PiftParams params;
                params.ni = ni;
                params.nt = nt;
                EXPECT_FALSE(
                    analysis::piftDetectsLeak(run.trace, params))
                    << entry->name << " NI=" << ni << " NT=" << nt;
            }
        }
    }
}

TEST(DroidBench, MalwareCaughtAtTinyWindow)
{
    core::PiftParams params;
    params.ni = 3;
    params.nt = 2;
    for (const auto &[entry, run] : suiteRuns().malware) {
        EXPECT_TRUE(analysis::piftDetectsLeak(run.trace, params))
            << entry->name;
    }
}

TEST(DroidBench, CalibrationReport)
{
    // Informational: per-app minimal NI at NT=3. This pins the
    // threshold structure behind Figure 11.
    printf("%-34s %8s %s\n", "app", "records", "minNI(NT=3)");
    for (const auto &[entry, run] : suiteRuns().droidbench) {
        if (!entry->leaks)
            continue;
        unsigned min_ni = analysis::minimalNi(run.trace, 3, 25);
        printf("%-34s %8zu %u\n", entry->name.c_str(),
               run.trace.records.size(), min_ni);
    }
    for (const auto &[entry, run] : suiteRuns().malware) {
        unsigned min_ni = analysis::minimalNi(run.trace, 2, 25);
        printf("%-34s %8zu %u (NT=2)\n", entry->name.c_str(),
               run.trace.records.size(), min_ni);
    }
    core::PiftParams paper;
    paper.ni = 13;
    paper.nt = 3;
    auto acc = analysis::evaluateAccuracy(labelledSet(), paper);
    printf("accuracy at (13,3): %.1f%% tp=%u fp=%u tn=%u fn=%u\n",
           100.0 * acc.accuracy(), acc.tp, acc.fp, acc.tn, acc.fn);
}
