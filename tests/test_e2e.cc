/**
 * @file
 * Cross-module end-to-end properties:
 *  - live tracking and offline replay produce identical verdicts;
 *  - traces survive serialization with identical analysis results;
 *  - the bounded hardware storage agrees with the ideal store on
 *    real app traces when sized per the paper, and degrades to false
 *    negatives (never false positives) when starved;
 *  - word-granularity storage never loses a detection;
 *  - multi-process interleavings keep per-process windows intact.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/evaluate.hh"
#include "core/taint_storage.hh"
#include "droidbench/app.hh"
#include "droidbench/helpers.hh"
#include "sim/trace_io.hh"

using namespace pift;
using droidbench::AppEntry;

namespace
{

const std::vector<AppEntry> &
suite()
{
    return droidbench::droidBenchApps();
}

/** A few representative apps across categories. */
std::vector<const AppEntry *>
sampleApps()
{
    std::vector<const AppEntry *> picked;
    for (const auto &entry : suite()) {
        if (entry.name == "PaperExample_ConcatChain_Sms" ||
            entry.name == "GPS_Latitude_Sms" ||
            entry.name == "FieldChar_Leak_Sms" ||
            entry.name == "Benign_ConstMessage_Sms" ||
            entry.name == "ImplicitFlow1_Sms") {
            picked.push_back(&entry);
        }
    }
    return picked;
}

bool
detectsWithStore(const sim::Trace &trace, core::TaintStore &store,
                 const core::PiftParams &params)
{
    core::PiftTracker tracker(params, store);
    sim::replay(trace, tracker);
    return tracker.anyLeak();
}

} // namespace

TEST(EndToEnd, LiveEqualsReplay)
{
    for (const auto *entry : sampleApps()) {
        // Live: tracker attached to the hub during execution.
        core::IdealRangeStore live_store;
        core::PiftTracker live({13, 3, true}, live_store);
        droidbench::AppContext ctx;
        ctx.hub.addSink(&live);
        dalvik::MethodId main = entry->declare(ctx);
        ctx.vm.boot();
        ctx.vm.execute(main);

        // Replay of the captured trace.
        bool replayed = analysis::piftDetectsLeak(
            ctx.buffer.trace(), {13, 3, true});
        EXPECT_EQ(live.anyLeak(), replayed) << entry->name;
    }
}

TEST(EndToEnd, SerializationPreservesVerdicts)
{
    for (const auto *entry : sampleApps()) {
        auto run = droidbench::runApp(*entry);
        std::stringstream ss;
        sim::writeTrace(ss, run.trace);
        sim::Trace loaded;
        ASSERT_TRUE(sim::readTrace(ss, loaded)) << entry->name;
        for (unsigned ni : {3u, 10u, 13u, 18u}) {
            core::PiftParams p{ni, 3, true};
            EXPECT_EQ(analysis::piftDetectsLeak(run.trace, p),
                      analysis::piftDetectsLeak(loaded, p))
                << entry->name << " NI=" << ni;
        }
    }
}

TEST(EndToEnd, HardwareStorageMatchesIdealAtPaperSizing)
{
    // 2730 entries (the paper's 32 KiB budget) must reproduce the
    // ideal-store verdict on every sampled app at every key setting.
    for (const auto *entry : sampleApps()) {
        auto run = droidbench::runApp(*entry);
        for (unsigned ni : {3u, 10u, 13u, 18u}) {
            core::PiftParams p{ni, 3, true};
            core::IdealRangeStore ideal;
            core::TaintStorageParams hw_params;
            hw_params.entries = 2730;
            core::TaintStorage hw(hw_params);
            EXPECT_EQ(detectsWithStore(run.trace, ideal, p),
                      detectsWithStore(run.trace, hw, p))
                << entry->name << " NI=" << ni;
        }
    }
}

TEST(EndToEnd, StarvedDropStorageNeverFalsePositive)
{
    // A tiny cache with the drop policy may miss leaks but must not
    // invent them (Section 3.3: dropping risks false negatives only).
    for (const auto &entry : suite()) {
        if (entry.leaks)
            continue;
        auto run = droidbench::runApp(entry);
        core::TaintStorageParams hw_params;
        hw_params.entries = 4;
        hw_params.policy = core::EvictPolicy::LruDrop;
        core::TaintStorage hw(hw_params);
        EXPECT_FALSE(detectsWithStore(run.trace, hw, {18, 3, true}))
            << entry.name;
    }
}

TEST(EndToEnd, WordGranularityNeverMissesAgainstRangeStore)
{
    // Word-granularity tags overtaint, so any leak the exact store
    // catches must also be caught at 4-byte granularity.
    for (const auto *entry : sampleApps()) {
        auto run = droidbench::runApp(*entry);
        for (unsigned ni : {10u, 13u, 18u}) {
            core::PiftParams p{ni, 3, true};
            core::IdealRangeStore ideal;
            bool exact = detectsWithStore(run.trace, ideal, p);
            if (!exact)
                continue;
            core::WordTaintStorage word(2);
            EXPECT_TRUE(detectsWithStore(run.trace, word, p))
                << entry->name << " NI=" << ni;
        }
    }
}

TEST(EndToEnd, MultiProcessInterleavingKeepsWindowsSeparate)
{
    // Run two "processes" interleaved at context-switch granularity:
    // a leaky app under pid 1 whose windows must not be disturbed by
    // pid 2's instruction stream. We emulate by merging two captured
    // traces round-robin (records keep their pid/local_seq).
    auto leaky = droidbench::runApp(*sampleApps()[0]); // PaperExample
    sim::Trace other_raw =
        droidbench::runApp(*sampleApps()[3]).trace;    // benign

    // Rewrite the benign trace to pid 2 and drop its controls.
    sim::Trace other;
    for (auto rec : other_raw.records) {
        rec.pid = 2;
        other.records.push_back(rec);
    }

    // Merge: alternate chunks of 50 records, remembering where every
    // leaky-trace record lands so its controls can be repositioned.
    sim::Trace merged;
    std::vector<SeqNum> where(leaky.trace.records.size() + 1, 0);
    size_t li = 0, oi = 0;
    while (li < leaky.trace.records.size() ||
           oi < other.records.size()) {
        for (int k = 0; k < 50 && li < leaky.trace.records.size();
             ++k) {
            where[li] = merged.records.size();
            merged.records.push_back(leaky.trace.records[li++]);
        }
        for (int k = 0; k < 50 && oi < other.records.size(); ++k)
            merged.records.push_back(other.records[oi++]);
    }
    where[leaky.trace.records.size()] = merged.records.size();
    for (auto ev : leaky.trace.controls) {
        ev.seq = where[std::min<size_t>(ev.seq, where.size() - 1)];
        merged.controls.push_back(ev);
    }

    EXPECT_TRUE(analysis::piftDetectsLeak(merged, {13, 3, true}));
}

TEST(EndToEnd, UntaintingAblationNeverLosesDetections)
{
    // Untainting shrinks state (Figures 18/19) without hurting
    // accuracy (Section 3.2): disabling it must never detect LESS.
    for (const auto *entry : sampleApps()) {
        auto run = droidbench::runApp(*entry);
        for (unsigned ni : {5u, 13u, 18u}) {
            core::PiftParams with{ni, 3, true};
            core::PiftParams without{ni, 3, false};
            bool a = analysis::piftDetectsLeak(run.trace, with);
            bool b = analysis::piftDetectsLeak(run.trace, without);
            if (a) {
                EXPECT_TRUE(b) << entry->name << " NI=" << ni;
            }
        }
    }
}

TEST(EndToEnd, RestartAblationChangesNoVerdictOnDirectFlows)
{
    // For the simple direct-flow apps the restart semantics should
    // not matter; this pins the ablation flag's plumbing.
    for (const auto &entry : suite()) {
        if (entry.category != "Direct")
            continue;
        auto run = droidbench::runApp(entry);
        core::PiftParams restart{13, 3, true};
        core::PiftParams once{13, 3, true};
        once.restart = false;
        EXPECT_EQ(analysis::piftDetectsLeak(run.trace, restart),
                  analysis::piftDetectsLeak(run.trace, once))
            << entry.name;
    }
}
