/**
 * @file
 * Tests for the exec thread pool: task coverage, deterministic
 * result ordering, exception capture, nested-call safety, the
 * --jobs/PIFT_JOBS override plumbing, and a concurrent sweep over
 * real tracker state. The concurrent cases are the ThreadSanitizer
 * targets for the whole parallel sweep engine: they drive
 * PiftTracker/IdealRangeStore replays and the telemetry registry from
 * many pool workers at once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"
#include "exec/thread_pool.hh"

using namespace pift;

namespace
{

/** A small labelled suite: enough apps to keep 4+ workers busy. */
const std::vector<analysis::LabelledTrace> &
smallSuite()
{
    static std::vector<analysis::LabelledTrace> set = [] {
        std::vector<analysis::LabelledTrace> s;
        const auto &apps = droidbench::droidBenchApps();
        for (size_t i = 0; i < apps.size() && s.size() < 10; ++i) {
            auto run = droidbench::runApp(apps[i]);
            s.push_back({apps[i].name, apps[i].leaks,
                         std::move(run.trace)});
        }
        return s;
    }();
    return set;
}

} // namespace

TEST(ThreadPool, ForEachCoversEveryIndexOnce)
{
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    pool.forEach(hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    exec::ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<size_t> order;
    pool.forEach(8, [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i); // inline = strictly sequential
}

TEST(ThreadPool, MaxJobsCapsParticipants)
{
    exec::ThreadPool pool(8);
    std::atomic<int> peak{0};
    std::atomic<int> active{0};
    pool.forEach(
        64,
        [&](size_t) {
            int now = ++active;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now))
                ;
            --active;
        },
        2);
    EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, ParallelMapPreservesOrder)
{
    std::vector<int> items(100);
    for (int i = 0; i < 100; ++i)
        items[i] = i;
    auto squares = exec::parallelMap(
        items, [](const int &v) { return v * v; }, 4);
    ASSERT_EQ(squares.size(), items.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    exec::ThreadPool pool(4);
    std::atomic<size_t> ran{0};
    try {
        pool.forEach(1000, [&](size_t i) {
            if (i == 17)
                throw std::runtime_error("task 17 failed");
            ++ran;
        });
        FAIL() << "expected the task exception to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 17 failed");
    }
    // Cancellation: the failure stopped the grid well short of 1000.
    EXPECT_LT(ran.load(), 1000u);
}

TEST(ThreadPool, PoolIsReusableAfterException)
{
    exec::ThreadPool pool(4);
    EXPECT_THROW(pool.forEach(
                     8, [](size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.forEach(32, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    std::atomic<int> inner_total{0};
    exec::parallelFor(
        8,
        [&](size_t) {
            // A task that fans out again must not block on its own
            // pool; the nested call degrades to inline execution.
            exec::parallelFor(
                16, [&](size_t) { ++inner_total; }, 4);
        },
        4);
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(JobsOverride, StripJobsFlagConsumesBothSpellings)
{
    exec::setDefaultJobs(0);
    char a0[] = "prog", a1[] = "--jobs", a2[] = "3", a3[] = "keep";
    char *argv1[] = {a0, a1, a2, a3};
    int argc1 = exec::stripJobsFlag(4, argv1);
    EXPECT_EQ(argc1, 2);
    EXPECT_STREQ(argv1[1], "keep");
    EXPECT_EQ(exec::defaultJobs(), 3u);

    char b0[] = "prog", b1[] = "--jobs=7";
    char *argv2[] = {b0, b1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv2), 1);
    EXPECT_EQ(exec::defaultJobs(), 7u);
    exec::setDefaultJobs(0);
}

TEST(JobsOverride, StripJobsFlagRejectsMalformedValues)
{
    exec::setDefaultJobs(0);
    char a0[] = "prog", a1[] = "--jobs", a2[] = "zero";
    char *argv1[] = {a0, a1, a2};
    EXPECT_EQ(exec::stripJobsFlag(3, argv1), -1);

    char b0[] = "prog", b1[] = "--jobs=0";
    char *argv2[] = {b0, b1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv2), -1);

    char c0[] = "prog", c1[] = "--jobs";
    char *argv3[] = {c0, c1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv3), -1);
    exec::setDefaultJobs(0);
}

namespace
{

/** Move-only-ish result type with no default constructor. */
struct NoDefault
{
    explicit NoDefault(int v) : value(v) { ++constructions; }
    NoDefault(const NoDefault &o) : value(o.value) {}
    NoDefault(NoDefault &&o) noexcept : value(o.value) {}
    NoDefault &operator=(const NoDefault &) = default;
    NoDefault &operator=(NoDefault &&) noexcept = default;

    int value;
    static std::atomic<int> constructions; //!< value ctors only
};

std::atomic<int> NoDefault::constructions{0};

} // namespace

TEST(ThreadPool, ParallelMapNonDefaultConstructibleResult)
{
    // Regression: slot storage used to be a value-initialized raw
    // R[], which required a default constructor and built every slot
    // twice. Now only fn's results are constructed.
    std::vector<int> items(64);
    for (int i = 0; i < 64; ++i)
        items[i] = i;
    NoDefault::constructions.store(0);
    auto out = exec::parallelMap(
        items, [](const int &v) { return NoDefault(v * 3); }, 4);
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i].value, i * 3);
    // Exactly one value construction per item — no default-slot
    // construction, no rebuild on assignment.
    EXPECT_EQ(NoDefault::constructions.load(), 64);
}

TEST(JobsOverride, StripJobsFlagRejectsOutOfRangeValues)
{
    exec::setDefaultJobs(0);
    // 2^32 used to narrow to 0 through the unsigned cast — which
    // *cleared* the override instead of failing.
    char a0[] = "prog", a1[] = "--jobs=4294967296";
    char *argv1[] = {a0, a1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv1), -1);

    // Past even long long: strtoll saturates with ERANGE.
    char b0[] = "prog", b1[] = "--jobs=99999999999999999999999";
    char *argv2[] = {b0, b1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv2), -1);

    char c0[] = "prog", c1[] = "--jobs=-4";
    char *argv3[] = {c0, c1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv3), -1);

    // The largest value that round-trips through unsigned is fine.
    char d0[] = "prog", d1[] = "--jobs=4294967295";
    char *argv4[] = {d0, d1};
    EXPECT_EQ(exec::stripJobsFlag(2, argv4), 1);
    EXPECT_EQ(exec::defaultJobs(), 4294967295u);
    exec::setDefaultJobs(0);
}

TEST(JobsOverride, WiderLateOverrideRebuildsGlobalPool)
{
    // Regression: a --jobs override applied after the shared pool's
    // first use was silently capped at the original width forever
    // (forEach clamps to nthreads).
    exec::setDefaultJobs(2);
    exec::ThreadPool &old_pool = exec::globalPool();
    unsigned before = old_pool.threads();
    ASSERT_GE(before, 2u);

    unsigned want = before + 3;
    exec::setDefaultJobs(want);
    EXPECT_EQ(exec::globalPool().threads(), want);

    // The widened parallelism is real: want tasks can all be in
    // flight simultaneously (each blocks until every one arrived,
    // which is only possible with want-way parallelism).
    std::mutex m;
    std::condition_variable cv;
    unsigned arrived = 0;
    bool all_concurrent = true;
    exec::parallelFor(want, [&](size_t) {
        std::unique_lock<std::mutex> lock(m);
        ++arrived;
        cv.notify_all();
        if (!cv.wait_for(lock, std::chrono::seconds(30),
                         [&] { return arrived >= want; }))
            all_concurrent = false;
    });
    EXPECT_TRUE(all_concurrent);

    // References handed out before the rebuild stay usable: the
    // retired pool is parked, not destroyed.
    std::atomic<int> count{0};
    old_pool.forEach(16, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 16);
    exec::setDefaultJobs(0);
}

TEST(ConcurrentSweep, AccuracyGridMatchesSerialAtEveryWidth)
{
    // The TSan workhorse: many workers replaying PiftTracker over
    // IdealRangeStore concurrently, all bumping the telemetry
    // counters, reduced to a grid that must not depend on scheduling.
    const auto &set = smallSuite();
    auto serial = analysis::accuracyGrid(set, 6, 4, true, 1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        auto parallel = analysis::accuracyGrid(set, 6, 4, true, jobs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].tp, serial[i].tp) << "cell " << i;
            EXPECT_EQ(parallel[i].fp, serial[i].fp) << "cell " << i;
            EXPECT_EQ(parallel[i].tn, serial[i].tn) << "cell " << i;
            EXPECT_EQ(parallel[i].fn, serial[i].fn) << "cell " << i;
        }
    }
}

TEST(ConcurrentSweep, MinimalNiMatchesSerial)
{
    const auto &set = smallSuite();
    for (const auto &item : set) {
        if (!item.leaks)
            continue;
        unsigned serial = analysis::minimalNi(item.trace, 3, 20, 1);
        unsigned parallel = analysis::minimalNi(item.trace, 3, 20, 4);
        EXPECT_EQ(parallel, serial) << item.name;
    }
}

TEST(ConcurrentSweep, WindowBoundSearchMatchesSerial)
{
    const auto &set = smallSuite();
    auto serial = analysis::windowBoundSearch(set, 8, 4, 1);
    auto parallel = analysis::windowBoundSearch(set, 8, 4, 4);
    EXPECT_EQ(parallel.ni, serial.ni);
    EXPECT_EQ(parallel.nt, serial.nt);
}
