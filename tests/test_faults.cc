/**
 * @file
 * Unit tests for the fault-injection layer: stream faults (drop,
 * duplicate, reorder, corrupt), storage faults (failed inserts,
 * forced evictions), command-port transients, degraded-mode verdicts,
 * determinism, and warning rate limiting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hw_module.hh"
#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "core/taint_storage.hh"
#include "faults/fault_injector.hh"
#include "support/logging.hh"

using namespace pift;
using core::SinkVerdict;
using faults::FaultConfig;
using faults::FaultInjector;
using faults::FaultyStream;
using faults::FaultyTaintStore;
using taint::AddrRange;

namespace
{

sim::TraceRecord
record(SeqNum seq, sim::MemKind kind = sim::MemKind::None,
       ProcId pid = 1)
{
    sim::TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = pid;
    r.pc = 0x8000 + static_cast<Addr>(4 * seq);
    r.op = kind == sim::MemKind::Load ? isa::Op::Ldr
        : kind == sim::MemKind::Store ? isa::Op::Str : isa::Op::Nop;
    r.mem_kind = kind;
    if (kind != sim::MemKind::None) {
        r.mem_start = 0x1000 + static_cast<Addr>(16 * seq);
        r.mem_end = r.mem_start + 3;
    }
    return r;
}

/** Downstream sink that logs everything it receives. */
struct Recorder : sim::TraceSink
{
    void
    onRecord(const sim::TraceRecord &rec) override
    {
        records.push_back(rec);
    }

    void
    onControl(const sim::ControlEvent &ev) override
    {
        controls.push_back(ev);
    }

    std::vector<sim::TraceRecord> records;
    std::vector<sim::ControlEvent> controls;
};

/** Fault config with every rate zero except the ones set by caller. */
FaultConfig
quietConfig(uint64_t seed = 7)
{
    FaultConfig cfg;
    cfg.seed = seed;
    return cfg;
}

std::vector<SeqNum>
seqsOf(const std::vector<sim::TraceRecord> &records)
{
    std::vector<SeqNum> out;
    for (const auto &r : records)
        out.push_back(r.seq);
    return out;
}

} // namespace

// --------------------------------------------------------------------
// FaultyStream

TEST(FaultyStream, NoFaultsIsTransparent)
{
    FaultInjector inj(quietConfig());
    Recorder down;
    FaultyStream stream(inj, down);
    for (SeqNum i = 0; i < 50; ++i)
        stream.onRecord(record(i, sim::MemKind::Load));
    stream.flush();
    ASSERT_EQ(down.records.size(), 50u);
    for (SeqNum i = 0; i < 50; ++i)
        EXPECT_EQ(down.records[i].seq, i);
    EXPECT_EQ(inj.stats().total(), 0u);
    EXPECT_EQ(inj.stats().records_seen, 50u);
}

TEST(FaultyStream, DropsAreCountedAndAnnounced)
{
    FaultConfig cfg = quietConfig();
    cfg.drop_num = cfg.rate_den; // always
    FaultInjector inj(cfg);
    Recorder down;
    std::vector<ProcId> lost;
    FaultyStream stream(inj, down,
                        [&lost](ProcId pid) { lost.push_back(pid); });
    for (SeqNum i = 0; i < 10; ++i)
        stream.onRecord(record(i, sim::MemKind::Store, 42));
    stream.flush();
    EXPECT_TRUE(down.records.empty());
    EXPECT_EQ(inj.stats().dropped, 10u);
    ASSERT_EQ(lost.size(), 10u);
    EXPECT_EQ(lost.front(), 42u);
}

TEST(FaultyStream, DuplicatesDeliverTwice)
{
    FaultConfig cfg = quietConfig();
    cfg.dup_num = cfg.rate_den;
    FaultInjector inj(cfg);
    Recorder down;
    FaultyStream stream(inj, down);
    for (SeqNum i = 0; i < 5; ++i)
        stream.onRecord(record(i));
    EXPECT_EQ(down.records.size(), 10u);
    EXPECT_EQ(inj.stats().duplicated, 5u);
    EXPECT_EQ(down.records[0].seq, down.records[1].seq);
}

TEST(FaultyStream, ReorderKeepsEveryRecord)
{
    FaultConfig cfg = quietConfig(13);
    cfg.reorder_num = cfg.rate_den / 2; // half the records delayed
    cfg.reorder_window = 3;
    FaultInjector inj(cfg);
    Recorder down;
    FaultyStream stream(inj, down);
    constexpr SeqNum n = 200;
    for (SeqNum i = 0; i < n; ++i)
        stream.onRecord(record(i, sim::MemKind::Load));
    stream.flush();

    ASSERT_EQ(down.records.size(), n);
    EXPECT_GT(inj.stats().reordered, 0u);
    // Same multiset of records, different order.
    auto seqs = seqsOf(down.records);
    auto sorted = seqs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_NE(seqs, sorted);
    for (SeqNum i = 0; i < n; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(FaultyStream, ControlEventsFlushPendingRecords)
{
    FaultConfig cfg = quietConfig();
    cfg.reorder_num = cfg.rate_den; // everything held back
    FaultInjector inj(cfg);
    Recorder down;
    FaultyStream stream(inj, down);
    for (SeqNum i = 0; i < 4; ++i)
        stream.onRecord(record(i));
    EXPECT_TRUE(down.records.empty()); // all pending

    sim::ControlEvent ev;
    ev.kind = sim::ControlKind::CheckSink;
    ev.pid = 1;
    stream.onControl(ev);
    // The software command sees every hardware event that preceded it.
    EXPECT_EQ(down.records.size(), 4u);
    ASSERT_EQ(down.controls.size(), 1u);
}

TEST(FaultyStream, CorruptShiftsRangeButKeepsSize)
{
    FaultConfig cfg = quietConfig(3);
    cfg.corrupt_num = cfg.rate_den;
    FaultInjector inj(cfg);
    Recorder down;
    bool announced = false;
    FaultyStream stream(inj, down,
                        [&announced](ProcId) { announced = true; });
    for (SeqNum i = 0; i < 20; ++i)
        stream.onRecord(record(i, sim::MemKind::Store));
    stream.flush();

    ASSERT_EQ(down.records.size(), 20u);
    EXPECT_EQ(inj.stats().corrupted, 20u);
    // Integrity faults are silent: no loss announcement.
    EXPECT_FALSE(announced);
    bool any_shifted = false;
    for (SeqNum i = 0; i < 20; ++i) {
        const auto &orig = record(i, sim::MemKind::Store);
        const auto &got = down.records[i];
        EXPECT_EQ(got.mem_end - got.mem_start,
                  orig.mem_end - orig.mem_start);
        if (got.mem_start != orig.mem_start)
            any_shifted = true;
    }
    EXPECT_TRUE(any_shifted);
}

TEST(FaultyStream, NonMemoryRecordsAreNeverCorrupted)
{
    FaultConfig cfg = quietConfig();
    cfg.corrupt_num = cfg.rate_den;
    FaultInjector inj(cfg);
    Recorder down;
    FaultyStream stream(inj, down);
    stream.onRecord(record(0)); // no memory access
    ASSERT_EQ(down.records.size(), 1u);
    EXPECT_EQ(inj.stats().corrupted, 0u);
    EXPECT_EQ(down.records[0].mem_start, 0u);
}

TEST(FaultyStream, SameSeedReproducesExactFaultPattern)
{
    auto run = [](uint64_t seed) {
        FaultConfig cfg;
        cfg.seed = seed;
        cfg.drop_num = 200'000;
        cfg.dup_num = 100'000;
        cfg.reorder_num = 100'000;
        cfg.corrupt_num = 50'000;
        FaultInjector inj(cfg);
        Recorder down;
        FaultyStream stream(inj, down);
        for (SeqNum i = 0; i < 500; ++i)
            stream.onRecord(record(i, sim::MemKind::Load));
        stream.flush();
        return std::make_pair(seqsOf(down.records), inj.stats());
    };

    auto [seqs_a, stats_a] = run(99);
    auto [seqs_b, stats_b] = run(99);
    EXPECT_EQ(seqs_a, seqs_b);
    EXPECT_EQ(stats_a.dropped, stats_b.dropped);
    EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
    EXPECT_EQ(stats_a.reordered, stats_b.reordered);
    EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);

    auto [seqs_c, stats_c] = run(100);
    EXPECT_NE(seqs_a, seqs_c); // different seed, different pattern
}

// --------------------------------------------------------------------
// FaultyTaintStore

TEST(FaultyTaintStore, NoFaultsDelegates)
{
    FaultInjector inj(quietConfig());
    core::IdealRangeStore inner;
    FaultyTaintStore store(inj, inner);
    EXPECT_TRUE(store.insert(1, AddrRange(0x100, 0x1ff)));
    EXPECT_TRUE(store.query(1, AddrRange(0x180, 0x180)));
    EXPECT_EQ(store.bytes(), 0x100u);
    EXPECT_TRUE(store.remove(1, AddrRange(0x100, 0x1ff)));
    EXPECT_EQ(store.rangeCount(), 0u);
    EXPECT_FALSE(store.saturated(1));
}

TEST(FaultyTaintStore, InsertFailureSaturatesProcess)
{
    FaultConfig cfg = quietConfig();
    cfg.insert_fail_num = cfg.rate_den;
    FaultInjector inj(cfg);
    core::IdealRangeStore inner;
    FaultyTaintStore store(inj, inner);
    EXPECT_FALSE(store.insert(7, AddrRange(0x100, 0x1ff)));
    EXPECT_FALSE(store.query(7, AddrRange(0x100, 0x100)));
    EXPECT_TRUE(store.saturated(7));
    EXPECT_FALSE(store.saturated(8));
    EXPECT_EQ(inj.stats().insert_fails, 1u);

    store.clearSaturation();
    EXPECT_FALSE(store.saturated(7));
}

TEST(FaultyTaintStore, ForcedEvictionRemovesARangeAndSaturates)
{
    FaultConfig cfg = quietConfig();
    cfg.forced_evict_num = cfg.rate_den;
    FaultInjector inj(cfg);
    core::IdealRangeStore inner;
    FaultyTaintStore store(inj, inner);
    store.insert(3, AddrRange(0x100, 0x1ff));
    // The insert itself triggered a forced evict of a history victim
    // (only candidate: the range just inserted).
    EXPECT_EQ(inj.stats().forced_evicts, 1u);
    EXPECT_FALSE(store.query(3, AddrRange(0x150, 0x150)));
    EXPECT_TRUE(store.saturated(3));
}

// --------------------------------------------------------------------
// Command-port faults and degraded verdicts

TEST(HwModuleFaults, CommandFaultLatchesErrorAndStatus)
{
    core::IdealRangeStore store;
    core::PiftTracker tracker(core::PiftParams{}, store);
    core::HwModule hw(tracker);

    FaultConfig cfg = quietConfig();
    cfg.cmd_error_num = cfg.rate_den;
    FaultInjector inj(cfg);
    hw.setCommandFaultHook(inj.commandFaultHook());

    hw.writePort(core::hw_ports::pid, 1);
    hw.writePort(core::hw_ports::start, 0x100);
    hw.writePort(core::hw_ports::end, 0x1ff);
    hw.writePort(core::hw_ports::command,
                 static_cast<uint32_t>(core::HwCommand::RegisterRange));
    EXPECT_EQ(hw.readPort(core::hw_ports::result), core::hw_cmd_error);
    EXPECT_TRUE(hw.readPort(core::hw_ports::status) &
                core::hw_status::cmd_failed);
    // The command did not execute.
    EXPECT_FALSE(store.query(1, AddrRange(0x100, 0x100)));
    EXPECT_EQ(inj.stats().cmd_errors, 1u);

    // Fault source detached: the re-issued command lands and the
    // sticky cmd_failed bit clears.
    hw.setCommandFaultHook({});
    hw.writePort(core::hw_ports::command,
                 static_cast<uint32_t>(core::HwCommand::RegisterRange));
    EXPECT_NE(hw.readPort(core::hw_ports::result), core::hw_cmd_error);
    EXPECT_FALSE(hw.readPort(core::hw_ports::status) &
                 core::hw_status::cmd_failed);
    EXPECT_TRUE(store.query(1, AddrRange(0x100, 0x100)));
}

TEST(DegradedVerdicts, StreamLossTurnsCleanIntoMaybe)
{
    core::IdealRangeStore store;
    core::PiftTracker tracker(core::PiftParams{}, store);

    sim::ControlEvent sink;
    sink.kind = sim::ControlKind::CheckSink;
    sink.pid = 1;
    sink.start = 0x9000;
    sink.end = 0x90ff;

    tracker.onControl(sink);
    ASSERT_EQ(tracker.sinkResults().size(), 1u);
    EXPECT_EQ(tracker.sinkResults()[0].verdict, SinkVerdict::Clean);

    tracker.noteStreamLoss(1);
    EXPECT_TRUE(tracker.degraded(1));
    tracker.onControl(sink);
    EXPECT_EQ(tracker.sinkResults()[1].verdict,
              SinkVerdict::MaybeTainted);
    EXPECT_FALSE(tracker.anyLeak());
    EXPECT_TRUE(tracker.anyPossibleLeak());

    // Loss for another process does not degrade this one.
    EXPECT_FALSE(tracker.degraded(2));

    // A genuinely tainted buffer still reads Tainted.
    sim::ControlEvent src = sink;
    src.kind = sim::ControlKind::RegisterSource;
    tracker.onControl(src);
    tracker.onControl(sink);
    EXPECT_EQ(tracker.sinkResults()[2].verdict, SinkVerdict::Tainted);
    EXPECT_TRUE(tracker.anyLeak());
}

TEST(DegradedVerdicts, StorageSaturationTurnsCleanIntoMaybe)
{
    core::TaintStorageParams sp;
    sp.entries = 1;
    sp.policy = core::EvictPolicy::LruDrop;
    sp.coalesce = false;
    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);

    sim::ControlEvent src;
    src.kind = sim::ControlKind::RegisterSource;
    src.pid = 1;
    src.start = 0x100;
    src.end = 0x1ff;
    tracker.onControl(src);
    src.start = 0x300;
    src.end = 0x3ff; // evicts + drops the first range
    tracker.onControl(src);
    ASSERT_TRUE(storage.saturated(1));

    sim::ControlEvent sink;
    sink.kind = sim::ControlKind::CheckSink;
    sink.pid = 1;
    sink.start = 0x9000;
    sink.end = 0x90ff;
    tracker.onControl(sink);
    EXPECT_EQ(tracker.sinkResults().back().verdict,
              SinkVerdict::MaybeTainted);
}

// --------------------------------------------------------------------
// Warning rate limiting

TEST(WarnRateLimit, SuppressesAfterLimitButKeepsCounting)
{
    resetWarnRateLimits();
    uint64_t warns_before = warnCount();
    uint64_t supp_before = warnSuppressedCount();
    for (int i = 0; i < 10; ++i)
        pift_warn_limited(3, "rate-limit test warning %d", i);
    // Every raise is counted, only the first three were emitted.
    EXPECT_EQ(warnCount() - warns_before, 10u);
    EXPECT_EQ(warnSuppressedCount() - supp_before, 7u);

    // A fresh site identity starts its own budget.
    resetWarnRateLimits();
    pift_warn_limited(3, "rate-limit test warning again");
    EXPECT_EQ(warnSuppressedCount() - supp_before, 7u);
}
