/**
 * @file
 * Tests for the mterp handler templates: slot geometry, execution
 * semantics of every bytecode family (parameterized binop sweeps),
 * and — the paper-critical property — dynamically measured
 * data-load-to-store distances that match Table 1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "dalvik/handlers.hh"
#include "dalvik/method.hh"
#include "dalvik/vm.hh"
#include "isa/disasm.hh"
#include "mem/layout.hh"
#include "mem/memory.hh"
#include "runtime/heap.hh"
#include "runtime/library.hh"
#include "sim/cpu.hh"

using namespace pift;
using namespace pift::dalvik;

namespace
{

struct Device
{
    Device() : cpu(memory, hub), heap(memory)
    {
        hub.addSink(&buffer);
        lib.install(dex);
    }

    uint32_t
    run(MethodBuilder &b, const std::vector<uint32_t> &args = {})
    {
        MethodId id = dex.addMethod(b.finish());
        vm.emplace(cpu, dex, heap);
        vm->boot();
        return vm->execute(id, args);
    }

    mem::Memory memory;
    sim::EventHub hub;
    sim::TraceBuffer buffer;
    sim::Cpu cpu;
    runtime::Heap heap;
    Dex dex;
    runtime::JavaLib lib;
    std::optional<Vm> vm;
};

} // namespace

TEST(Handlers, EverySlotFitsAndIsPlacedCorrectly)
{
    HandlerSet set = emitHandlers();
    ASSERT_EQ(set.handlers.size(), num_bytecodes);
    for (unsigned op = 0; op < num_bytecodes; ++op) {
        const isa::Program &p = set.handlers[op];
        EXPECT_EQ(p.base, mem::handler_base +
                  op * mem::handler_slot_bytes)
            << bcName(static_cast<Bc>(op));
        EXPECT_LE(p.insts.size(),
                  mem::handler_slot_bytes / isa::inst_bytes)
            << bcName(static_cast<Bc>(op));
        EXPECT_GE(p.insts.size(), 1u);
    }
    EXPECT_EQ(set.entry.base, mem::mterp_entry_addr);
}

TEST(Handlers, Figure8TemplateShape)
{
    // The mul-int/2addr handler must follow Figure 8's structure.
    HandlerSet set = emitHandlers();
    const isa::Program &h =
        set.handlers[static_cast<unsigned>(Bc::MulInt2Addr)];
    ASSERT_GE(h.insts.size(), 9u);
    EXPECT_EQ(isa::disassemble(h.insts[0]), "mov r3, r7, lsr #12");
    EXPECT_EQ(isa::disassemble(h.insts[1]), "ubfx r9, r7, #8, #4");
    EXPECT_EQ(isa::disassemble(h.insts[2]),
              "ldr r1, [r5, r3, lsl #2]");
    EXPECT_EQ(isa::disassemble(h.insts[3]),
              "ldr r0, [r5, r9, lsl #2]");
    EXPECT_EQ(isa::disassemble(h.insts[4]), "ldrh r7, [r4, #2]!");
    EXPECT_EQ(isa::disassemble(h.insts[5]), "mul r0, r1, r0");
    EXPECT_EQ(isa::disassemble(h.insts[6]), "and r12, r7, #255");
    EXPECT_EQ(isa::disassemble(h.insts[7]),
              "str r0, [r5, r9, lsl #2]");
    EXPECT_EQ(isa::disassemble(h.insts[8]),
              "add pc, r8, r12, lsl #7");
}

struct BinopCase
{
    const char *name;
    Bc op;
    uint32_t a, b;
    uint32_t expect;
};

class BinopSemantics : public ::testing::TestWithParam<BinopCase>
{};

TEST_P(BinopSemantics, F23xComputes)
{
    const BinopCase &c = GetParam();
    Device d;
    MethodBuilder b("binop", 8, 2);
    b.binop(c.op, 0, 6, 7);
    b.returnValue(0);
    EXPECT_EQ(d.run(b, {c.a, c.b}), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinops, BinopSemantics,
    ::testing::Values(
        BinopCase{"add", Bc::AddInt, 30, 12, 42},
        BinopCase{"sub", Bc::SubInt, 50, 8, 42},
        BinopCase{"sub_order", Bc::SubInt, 8, 50,
                  static_cast<uint32_t>(-42)},
        BinopCase{"mul", Bc::MulInt, 6, 7, 42},
        BinopCase{"div", Bc::DivInt, 85, 2, 42},
        BinopCase{"div_negative", Bc::DivInt,
                  static_cast<uint32_t>(-84), 2,
                  static_cast<uint32_t>(-42)},
        BinopCase{"rem", Bc::RemInt, 99, 10, 9},
        BinopCase{"and", Bc::AndInt, 0xff, 0x2a, 0x2a},
        BinopCase{"or", Bc::OrInt, 0x28, 0x02, 0x2a},
        BinopCase{"xor", Bc::XorInt, 0xff, 0xd5, 0x2a},
        BinopCase{"shl", Bc::ShlInt, 21, 1, 42},
        BinopCase{"shr", Bc::ShrInt, 84, 1, 42},
        BinopCase{"shr_arith", Bc::ShrInt, static_cast<uint32_t>(-84),
                  1, static_cast<uint32_t>(-42)}),
    [](const ::testing::TestParamInfo<BinopCase> &info) {
        return info.param.name;
    });

class Binop2AddrSemantics : public ::testing::TestWithParam<BinopCase>
{};

TEST_P(Binop2AddrSemantics, F12xComputesInPlace)
{
    const BinopCase &c = GetParam();
    Device d;
    MethodBuilder b("binop2", 8, 2);
    b.binop2addr(c.op, 6, 7);
    b.returnValue(6);
    EXPECT_EQ(d.run(b, {c.a, c.b}), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    All2Addr, Binop2AddrSemantics,
    ::testing::Values(
        BinopCase{"add", Bc::AddInt2Addr, 40, 2, 42},
        BinopCase{"sub", Bc::SubInt2Addr, 50, 8, 42},
        BinopCase{"mul", Bc::MulInt2Addr, 21, 2, 42},
        BinopCase{"div", Bc::DivInt2Addr, 126, 3, 42},
        BinopCase{"and", Bc::AndInt2Addr, 0x6a, 0x2f, 0x2a},
        BinopCase{"or", Bc::OrInt2Addr, 0x20, 0x0a, 0x2a},
        BinopCase{"xor", Bc::XorInt2Addr, 0x6a, 0x40, 0x2a}),
    [](const ::testing::TestParamInfo<BinopCase> &info) {
        return info.param.name;
    });

TEST(Handlers, LiteralArithmetic)
{
    Device d;
    MethodBuilder b("lit", 8, 1);
    b.addIntLit8(0, 7, -2);
    b.mulIntLit8(0, 0, 3);
    b.returnValue(0);
    EXPECT_EQ(d.run(b, {16}), 42u);
}

TEST(Handlers, Conversions)
{
    Device d;
    MethodBuilder b("conv", 8, 1);
    b.intToChar(0, 7);
    b.returnValue(0);
    EXPECT_EQ(d.run(b, {0x12abcd}), 0xabcdu);

    Device d2;
    MethodBuilder b2("conv2", 8, 1);
    b2.intToByte(0, 7);
    b2.returnValue(0);
    EXPECT_EQ(d2.run(b2, {0x1ff}), 0xffffffffu); // sign-extended -1
}

TEST(Handlers, WideMovesAndArithmetic)
{
    Device d;
    // v0/v1 <- (2, 3); v2/v3 <- (10, 20); add-long -> (12, 23)
    MethodBuilder b("wide", 8, 0);
    b.const4(0, 2);
    b.const4(1, 3);
    b.const4(2, 5);
    b.moveWide(4, 0);          // v4/v5 <- v0/v1
    b.const16(2, 10);
    b.const16(3, 20);
    b.addLong(6, 4, 2);        // v6/v7 <- v4/v5 + v2/v3
    b.returnValue(6);
    EXPECT_EQ(d.run(b), 12u);

    Device d2;
    MethodBuilder b2("wide2", 8, 0);
    b2.const16(0, 1000);
    b2.const4(1, 0);
    b2.const16(2, 1000);
    b2.const4(3, 0);
    b2.mulLong(4, 0, 2);
    b2.returnValue(4);
    EXPECT_EQ(d2.run(b2), 1000000u);
}

TEST(Handlers, StaticsRoundTrip)
{
    Device d;
    uint16_t slot = d.dex.addStatic("s");
    MethodBuilder b("statics", 8, 1);
    b.sput(7, slot);
    b.const4(0, 0);
    b.sget(0, slot);
    b.returnValue(0);
    EXPECT_EQ(d.run(b, {0x1234}), 0x1234u);
}

TEST(Handlers, InstanceFieldsRoundTrip)
{
    Device d;
    auto cls = d.dex.addClass({"Pair", 2, 0, {}});
    MethodBuilder b("fields", 8, 2);
    b.newInstance(0, static_cast<uint16_t>(cls));
    b.iput(6, 0, 0);
    b.iput(7, 0, 4);
    b.iget(1, 0, 4);
    b.iget(2, 0, 0);
    b.binop(Bc::SubInt, 3, 1, 2);
    b.returnValue(3);
    EXPECT_EQ(d.run(b, {10, 52}), 42u);
}

TEST(Handlers, ArraysRoundTripAllWidths)
{
    Device d;
    MethodBuilder b("arrays", 8, 0);
    b.const4(0, 5);
    b.newArray(1, 0, static_cast<uint16_t>(d.dex.intArrayClass()));
    b.const4(2, 3);               // index
    b.const16(3, 4242);
    b.aput(3, 1, 2);
    b.aget(4, 1, 2);
    b.arrayLength(5, 1);
    b.binop(Bc::AddInt, 0, 4, 5); // 4242 + 5
    b.returnValue(0);
    EXPECT_EQ(d.run(b), 4247u);

    Device d2;
    MethodBuilder b2("chararr", 8, 0);
    b2.const4(0, 4);
    b2.newArray(1, 0, static_cast<uint16_t>(d2.dex.charArrayClass()));
    b2.const4(2, 1);
    b2.const16(3, 'Z');
    b2.aputChar(3, 1, 2);
    b2.agetChar(4, 1, 2);
    b2.returnValue(4);
    EXPECT_EQ(d2.run(b2), static_cast<uint32_t>('Z'));
}

TEST(Handlers, ObjectArraysWithTypeCheck)
{
    Device d;
    uint16_t pool = d.dex.addString("payload");
    MethodBuilder b("objarr", 8, 0);
    b.const4(0, 3);
    b.newArray(1, 0,
               static_cast<uint16_t>(d.dex.objectArrayClass()));
    b.constString(2, pool);
    b.const4(3, 2);
    b.aputObject(2, 1, 3);
    b.agetObject(4, 1, 3);
    b.returnObject(4);
    uint32_t ref = d.run(b);
    EXPECT_EQ(d.vm->readString(ref), "payload");
}

TEST(Handlers, AllIfVariants)
{
    struct IfCase
    {
        Bc op;
        uint32_t a, b;
        bool taken;
    };
    const IfCase cases[] = {
        {Bc::IfEq, 5, 5, true},   {Bc::IfEq, 5, 6, false},
        {Bc::IfNe, 5, 6, true},   {Bc::IfNe, 5, 5, false},
        {Bc::IfLt, 1, 2, true},   {Bc::IfLt, 2, 2, false},
        {Bc::IfGe, 2, 2, true},   {Bc::IfGe, 1, 2, false},
        {Bc::IfGt, 3, 2, true},   {Bc::IfGt, 2, 2, false},
        {Bc::IfLe, 2, 2, true},   {Bc::IfLe, 3, 2, false},
    };
    for (const auto &c : cases) {
        Device d;
        MethodBuilder b("ifs", 8, 2);
        switch (c.op) {
          case Bc::IfEq: b.ifEq(6, 7, "t"); break;
          case Bc::IfNe: b.ifNe(6, 7, "t"); break;
          case Bc::IfLt: b.ifLt(6, 7, "t"); break;
          case Bc::IfGe: b.ifGe(6, 7, "t"); break;
          case Bc::IfGt: b.ifGt(6, 7, "t"); break;
          default:       b.ifLe(6, 7, "t"); break;
        }
        b.const4(0, 0);
        b.returnValue(0);
        b.label("t");
        b.const4(0, 1);
        b.returnValue(0);
        EXPECT_EQ(d.run(b, {c.a, c.b}), c.taken ? 1u : 0u)
            << bcName(c.op) << " " << c.a << "," << c.b;
    }
}

TEST(Handlers, ZeroTestBranches)
{
    Device d;
    // abs(x) via if-gez
    MethodBuilder b("zif", 8, 1);
    b.ifGez(7, "pos");
    b.const4(0, 0);
    b.binop(Bc::SubInt, 0, 0, 7);
    b.returnValue(0);
    b.label("pos");
    b.returnValue(7);
    EXPECT_EQ(d.run(b, {static_cast<uint32_t>(-42)}), 42u);

    Device d2;
    MethodBuilder b2("zif2", 8, 1);
    b2.ifLtz(7, "neg");
    b2.const4(0, 1);
    b2.returnValue(0);
    b2.label("neg");
    b2.const4(0, 2);
    b2.returnValue(0);
    EXPECT_EQ(d2.run(b2, {5}), 1u);
}

TEST(Handlers, CheckCastIsTransparent)
{
    Device d;
    uint16_t pool = d.dex.addString("x");
    MethodBuilder b("cast", 8, 0);
    b.constString(0, pool);
    b.checkCast(0, static_cast<uint16_t>(d.dex.stringClass()));
    b.returnObject(0);
    uint32_t ref = d.run(b);
    EXPECT_EQ(d.vm->readString(ref), "x");
}

// ---- Dynamic distance measurement ----------------------------------

namespace
{

/**
 * Execute one instance of @p bc inside a method and measure the
 * retired-instruction distance from the handler's annotated data
 * loads to its data store. This pins the Table 1 claim dynamically,
 * not just by template geometry.
 */
int
measureDistance(Bc bc)
{
    Device d;
    HandlerSet set = emitHandlers();
    const auto &info = set.info[static_cast<unsigned>(bc)];
    if (info.data_store_pcs.empty() || info.data_load_pcs.empty())
        return -1;

    MethodBuilder b("probe", 8, 2);
    switch (format(bc)) {
      case Format::F12x:
        b.binop2addr(bc == Bc::Move || bc == Bc::MoveObject ||
                     bc == Bc::MoveWide || bc == Bc::IntToChar ||
                     bc == Bc::IntToByte ? bc : bc, 6, 7);
        break;
      default:
        return -1;
    }
    b.returnValue(6);
    MethodId id = d.dex.addMethod(b.finish());
    d.vm.emplace(d.cpu, d.dex, d.heap);
    d.vm->boot();
    d.vm->execute(id, {3, 4});

    const auto &recs = d.buffer.trace().records;
    int64_t first_load = -1, last_store = -1;
    for (size_t i = 0; i < recs.size(); ++i) {
        for (Addr pc : info.data_load_pcs)
            if (recs[i].pc == pc && first_load < 0)
                first_load = static_cast<int64_t>(i);
        for (Addr pc : info.data_store_pcs)
            if (recs[i].pc == pc)
                last_store = static_cast<int64_t>(i);
    }
    if (first_load < 0 || last_store < 0)
        return -1;
    return static_cast<int>(last_store - first_load);
}

} // namespace

TEST(HandlerDistances, DynamicMatchesTable1ForF12xMovers)
{
    // Retired-instruction distances, measured by actually executing
    // the bytecode on the CPU and locating the annotated loads and
    // stores in the trace.
    EXPECT_EQ(measureDistance(Bc::Move), 3);
    EXPECT_EQ(measureDistance(Bc::MoveObject), 3);
    EXPECT_EQ(measureDistance(Bc::AddInt2Addr), 5);
    EXPECT_EQ(measureDistance(Bc::MulInt2Addr), 5);
    EXPECT_EQ(measureDistance(Bc::IntToChar), 6);
    EXPECT_EQ(measureDistance(Bc::MoveWide), 4);
}

TEST(HandlerDistances, TemplateGeometryMatchesTable1ForAll)
{
    // Static check over every data-moving opcode: straight-line
    // distance between the annotated instructions equals the Table 1
    // value.
    HandlerSet set = emitHandlers();
    for (unsigned op = 0; op < num_bytecodes; ++op) {
        Bc bc = static_cast<Bc>(op);
        int expected = expectedDistance(bc);
        if (expected < 0)
            continue;
        const auto &info = set.info[op];
        ASSERT_FALSE(info.data_load_pcs.empty()) << bcName(bc);
        ASSERT_FALSE(info.data_store_pcs.empty()) << bcName(bc);
        Addr first = *std::min_element(info.data_load_pcs.begin(),
                                       info.data_load_pcs.end());
        Addr last = *std::max_element(info.data_store_pcs.begin(),
                                      info.data_store_pcs.end());
        EXPECT_EQ(static_cast<int>((last - first) / isa::inst_bytes),
                  expected)
            << bcName(bc);
    }
}
