/**
 * @file
 * Tests for the memory-mapped command-port protocol of the PIFT
 * hardware module (Section 3.3): register/check/configure/clear
 * through the port registers, as the kernel-level PIFT Module would
 * drive them.
 */

#include <gtest/gtest.h>

#include "core/hw_module.hh"
#include "core/taint_store.hh"
#include "support/logging.hh"

using namespace pift;
using namespace pift::core;

namespace
{

struct Fixture
{
    Fixture() : tracker({13, 3, true}, store), hw(tracker) {}

    /** Drive a full register-range command sequence. */
    void
    registerRange(ProcId pid, Addr start, Addr end)
    {
        hw.writePort(hw_ports::pid, pid);
        hw.writePort(hw_ports::start, start);
        hw.writePort(hw_ports::end, end);
        hw.writePort(hw_ports::command,
                     static_cast<uint32_t>(HwCommand::RegisterRange));
    }

    /** Drive a check command; returns the result register. */
    uint32_t
    check(ProcId pid, Addr start, Addr end)
    {
        hw.writePort(hw_ports::pid, pid);
        hw.writePort(hw_ports::start, start);
        hw.writePort(hw_ports::end, end);
        hw.writePort(hw_ports::command,
                     static_cast<uint32_t>(HwCommand::CheckRange));
        return hw.readPort(hw_ports::result);
    }

    IdealRangeStore store;
    PiftTracker tracker;
    HwModule hw;
};

} // namespace

TEST(HwModule, RegisterThenCheck)
{
    Fixture f;
    f.registerRange(5, 0x4000, 0x40ff);
    EXPECT_EQ(f.check(5, 0x4080, 0x4081), 1u);
    EXPECT_EQ(f.check(5, 0x5000, 0x5001), 0u);
    EXPECT_EQ(f.check(6, 0x4080, 0x4081), 0u); // wrong pid
}

TEST(HwModule, OperandRegistersReadBack)
{
    Fixture f;
    f.hw.writePort(hw_ports::start, 0x1234);
    f.hw.writePort(hw_ports::end, 0x5678);
    f.hw.writePort(hw_ports::pid, 42);
    EXPECT_EQ(f.hw.readPort(hw_ports::start), 0x1234u);
    EXPECT_EQ(f.hw.readPort(hw_ports::end), 0x5678u);
    EXPECT_EQ(f.hw.readPort(hw_ports::pid), 42u);
}

TEST(HwModule, ConfigureSetsTrackerParams)
{
    Fixture f;
    f.hw.writePort(hw_ports::ni, 7);
    f.hw.writePort(hw_ports::nt, 2);
    f.hw.writePort(hw_ports::untaint, 0);
    f.hw.writePort(hw_ports::command,
                   static_cast<uint32_t>(HwCommand::Configure));
    EXPECT_EQ(f.tracker.params().ni, 7u);
    EXPECT_EQ(f.tracker.params().nt, 2u);
    EXPECT_FALSE(f.tracker.params().untaint);
}

TEST(HwModule, ClearAllDropsTaint)
{
    Fixture f;
    f.registerRange(1, 0x4000, 0x40ff);
    f.hw.writePort(hw_ports::command,
                   static_cast<uint32_t>(HwCommand::ClearAll));
    EXPECT_EQ(f.check(1, 0x4000, 0x40ff), 0u);
}

TEST(HwModule, ChecksAreRecordedAsSinkResults)
{
    Fixture f;
    f.registerRange(1, 0x4000, 0x40ff);
    f.check(1, 0x4000, 0x4001);
    f.check(1, 0x9000, 0x9001);
    ASSERT_EQ(f.tracker.sinkResults().size(), 2u);
    EXPECT_TRUE(f.tracker.sinkResults()[0].tainted);
    EXPECT_FALSE(f.tracker.sinkResults()[1].tainted);
}

TEST(HwModule, UnknownPortWarnsButSurvives)
{
    Fixture f;
    uint64_t warns = warnCount();
    f.hw.writePort(0xfc, 1);
    EXPECT_EQ(f.hw.readPort(0xfc), 0u);
    EXPECT_GT(warnCount(), warns);
}
