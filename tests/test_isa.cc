/**
 * @file
 * Unit tests for the ISA layer: instruction metadata, the assembler
 * (labels, operand factories, program geometry) and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/inst.hh"

using namespace pift;
using namespace pift::isa;

TEST(InstMeta, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Op::Ldr));
    EXPECT_TRUE(isLoad(Op::Ldrh));
    EXPECT_TRUE(isLoad(Op::Ldrb));
    EXPECT_TRUE(isLoad(Op::Ldrd));
    EXPECT_TRUE(isLoad(Op::Ldm));
    EXPECT_FALSE(isLoad(Op::Str));
    EXPECT_FALSE(isLoad(Op::Add));

    EXPECT_TRUE(isStore(Op::Str));
    EXPECT_TRUE(isStore(Op::Strh));
    EXPECT_TRUE(isStore(Op::Strb));
    EXPECT_TRUE(isStore(Op::Strd));
    EXPECT_TRUE(isStore(Op::Stm));
    EXPECT_FALSE(isStore(Op::Ldr));
    EXPECT_FALSE(isStore(Op::Mov));

    EXPECT_TRUE(isMem(Op::Ldr));
    EXPECT_TRUE(isMem(Op::Stm));
    EXPECT_FALSE(isMem(Op::B));
}

TEST(InstMeta, TransferBytes)
{
    EXPECT_EQ(transferBytes(Op::Ldrb), 1u);
    EXPECT_EQ(transferBytes(Op::Strb), 1u);
    EXPECT_EQ(transferBytes(Op::Ldrh), 2u);
    EXPECT_EQ(transferBytes(Op::Ldr), 4u);
    EXPECT_EQ(transferBytes(Op::Strd), 8u);
    EXPECT_EQ(transferBytes(Op::Add), 0u);
}

TEST(InstMeta, AccessBytesForMultiple)
{
    Inst ldm;
    ldm.op = Op::Ldm;
    ldm.reg_count = 4;
    EXPECT_EQ(accessBytes(ldm), 16u);

    Inst ldr;
    ldr.op = Op::Ldr;
    EXPECT_EQ(accessBytes(ldr), 4u);
}

TEST(InstMeta, EveryOpcodeHasAName)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Op::NumOps); ++i) {
        const char *name = opName(static_cast<Op>(i));
        EXPECT_STRNE(name, "?") << "opcode " << i;
    }
}

TEST(Operands, Factories)
{
    Operand2 i = imm(-5);
    EXPECT_TRUE(i.is_imm);
    EXPECT_EQ(i.imm, -5);

    Operand2 r = reg(3);
    EXPECT_FALSE(r.is_imm);
    EXPECT_EQ(r.reg, 3);
    EXPECT_EQ(r.shift, ShiftKind::None);

    Operand2 s = regLsl(7, 2);
    EXPECT_EQ(s.shift, ShiftKind::Lsl);
    EXPECT_EQ(s.shift_amount, 2);

    EXPECT_EQ(regLsr(7, 12).shift, ShiftKind::Lsr);
    EXPECT_EQ(regAsr(7, 1).shift, ShiftKind::Asr);
}

TEST(Operands, MemoryFactories)
{
    MemOperand off = memOff(5, 8);
    EXPECT_EQ(off.base, 5);
    EXPECT_EQ(off.offset, 8);
    EXPECT_EQ(off.index, no_reg);
    EXPECT_EQ(off.writeback, WriteBack::None);

    MemOperand pre = memOff(4, 2, WriteBack::Pre);
    EXPECT_EQ(pre.writeback, WriteBack::Pre);

    MemOperand idx = memIdx(5, 3, 2);
    EXPECT_EQ(idx.base, 5);
    EXPECT_EQ(idx.index, 3);
    EXPECT_EQ(idx.index_shift, 2);
}

TEST(Assembler, ProgramGeometry)
{
    Assembler a(0x1000);
    EXPECT_EQ(a.here(), 0x1000u);
    a.nop().nop().nop();
    EXPECT_EQ(a.here(), 0x100cu);
    Program p = a.finish();
    EXPECT_EQ(p.base, 0x1000u);
    EXPECT_EQ(p.end(), 0x100cu);
    EXPECT_TRUE(p.contains(0x1000));
    EXPECT_TRUE(p.contains(0x1008));
    EXPECT_FALSE(p.contains(0x100c));
    EXPECT_FALSE(p.contains(0x1002)); // misaligned
    EXPECT_FALSE(p.contains(0x0ffc));
}

TEST(Assembler, LabelsResolveToAbsoluteAddresses)
{
    Assembler a(0x2000);
    a.nop();
    a.label("target");
    a.nop();
    a.b("target");
    Program p = a.finish();
    EXPECT_EQ(p.labelAddr("target"), 0x2004u);
    EXPECT_EQ(p.insts[2].target, 0x2004u);
}

TEST(Assembler, ForwardReferences)
{
    Assembler a(0);
    a.b("fwd");
    a.nop();
    a.label("fwd");
    a.nop();
    Program p = a.finish();
    EXPECT_EQ(p.insts[0].target, 8u);
}

TEST(Assembler, ConditionalAndFlagVariants)
{
    Assembler a(0);
    a.adds(0, 1, imm(1));
    a.add(0, 1, imm(1), Cond::Eq);
    a.cmp(2, reg(3));
    Program p = a.finish();
    EXPECT_TRUE(p.insts[0].set_flags);
    EXPECT_EQ(p.insts[1].cond, Cond::Eq);
    EXPECT_TRUE(p.insts[2].set_flags);
    EXPECT_EQ(p.insts[2].op, Op::Cmp);
}

TEST(Assembler, MemoryInstructions)
{
    Assembler a(0);
    a.ldr(1, memIdx(5, 3, 2));
    a.ldrh(7, memOff(4, 2, WriteBack::Pre));
    a.strd(0, memOff(9, 0));
    a.ldm(10, 4, 4);
    Program p = a.finish();
    EXPECT_EQ(p.insts[0].op, Op::Ldr);
    EXPECT_EQ(p.insts[0].mem.index, 3);
    EXPECT_EQ(p.insts[1].mem.writeback, WriteBack::Pre);
    EXPECT_EQ(p.insts[2].op, Op::Strd);
    EXPECT_EQ(p.insts[3].reg_count, 4);
}

TEST(Disasm, CanonicalForms)
{
    Assembler a(0);
    a.ldr(1, memIdx(5, 3, 2));
    a.ldrh(7, memOff(4, 2, WriteBack::Pre));
    a.mul(0, 1, 0);
    a.add(15, 8, regLsl(12, 7));
    a.str(0, memIdx(5, 9, 2));
    a.ubfx(9, 7, 8, 4);
    a.svc(3);
    a.bx(14);
    Program p = a.finish();

    // The Figure 8/9 shapes of the paper.
    EXPECT_EQ(disassemble(p.insts[0]), "ldr r1, [r5, r3, lsl #2]");
    EXPECT_EQ(disassemble(p.insts[1]), "ldrh r7, [r4, #2]!");
    EXPECT_EQ(disassemble(p.insts[2]), "mul r0, r1, r0");
    EXPECT_EQ(disassemble(p.insts[3]), "add pc, r8, r12, lsl #7");
    EXPECT_EQ(disassemble(p.insts[4]), "str r0, [r5, r9, lsl #2]");
    EXPECT_EQ(disassemble(p.insts[5]), "ubfx r9, r7, #8, #4");
    EXPECT_EQ(disassemble(p.insts[6]), "svc #3");
    EXPECT_EQ(disassemble(p.insts[7]), "bx lr");
}

TEST(Disasm, ConditionSuffixes)
{
    Assembler a(0);
    a.b("x", Cond::Ne);
    a.label("x");
    a.mov(0, reg(1), Cond::Eq);
    Program p = a.finish();
    EXPECT_EQ(disassemble(p.insts[0]), "bne 0x4");
    EXPECT_EQ(disassemble(p.insts[1]), "moveq r0, r1");
}

TEST(Disasm, ProgramListing)
{
    Assembler a(0x4004c114);
    a.ldrh(6, memIdx(1, 4, 0));
    a.adds(3, 3, imm(1));
    a.strh(6, memIdx(0, 4, 0));
    Program p = a.finish();
    std::string text = disassemble(p);
    EXPECT_NE(text.find("0x4004c114: ldrh r6, [r1, r4]"),
              std::string::npos);
    EXPECT_NE(text.find("0x4004c118: adds r3, r3, #1"),
              std::string::npos);
    EXPECT_NE(text.find("0x4004c11c: strh r6, [r0, r4]"),
              std::string::npos);
}
