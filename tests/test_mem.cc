/**
 * @file
 * Unit tests for simulated memory and the bump allocators.
 */

#include <gtest/gtest.h>

#include "mem/layout.hh"
#include "mem/memory.hh"

using namespace pift;
using mem::BumpAllocator;
using mem::Memory;

TEST(Memory, ZeroFilledOnFirstTouch)
{
    Memory m;
    EXPECT_EQ(m.read32(0x1234), 0u);
    EXPECT_EQ(m.read8(0xffff'fff0), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(Memory, ReadWriteWidths)
{
    Memory m;
    m.write8(0x100, 0xab);
    m.write16(0x200, 0xbeef);
    m.write32(0x300, 0xdeadbeef);
    m.write64(0x400, 0x0123456789abcdefull);
    EXPECT_EQ(m.read8(0x100), 0xab);
    EXPECT_EQ(m.read16(0x200), 0xbeef);
    EXPECT_EQ(m.read32(0x300), 0xdeadbeefu);
    EXPECT_EQ(m.read64(0x400), 0x0123456789abcdefull);
}

TEST(Memory, LittleEndianByteOrder)
{
    Memory m;
    m.write32(0x100, 0x11223344);
    EXPECT_EQ(m.read8(0x100), 0x44);
    EXPECT_EQ(m.read8(0x101), 0x33);
    EXPECT_EQ(m.read8(0x102), 0x22);
    EXPECT_EQ(m.read8(0x103), 0x11);
    EXPECT_EQ(m.read16(0x100), 0x3344);
    EXPECT_EQ(m.read16(0x102), 0x1122);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr boundary = mem::page_bytes - 2;
    m.write32(boundary, 0xcafef00d);
    EXPECT_EQ(m.read32(boundary), 0xcafef00du);
    EXPECT_EQ(m.read16(boundary), 0xf00d);
    EXPECT_EQ(m.read16(boundary + 2), 0xcafe);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(Memory, BlockCopy)
{
    Memory m;
    const char data[] = "predictive information flow";
    m.writeBlock(0x9000, data, sizeof(data));
    char out[sizeof(data)] = {};
    m.readBlock(0x9000, out, sizeof(data));
    EXPECT_STREQ(out, data);
}

TEST(Memory, String16RoundTrip)
{
    Memory m;
    m.writeString16(0x5000, "IMEI-356938");
    EXPECT_EQ(m.readString16(0x5000, 11), "IMEI-356938");
    // Each char is two bytes (Java layout, paper footnote 1).
    EXPECT_EQ(m.read16(0x5000), static_cast<uint16_t>('I'));
    EXPECT_EQ(m.read16(0x5002), static_cast<uint16_t>('M'));
}

TEST(Memory, PartialOverwrite)
{
    Memory m;
    m.write32(0x100, 0xffffffff);
    m.write8(0x101, 0);
    EXPECT_EQ(m.read32(0x100), 0xffff00ffu);
}

TEST(BumpAllocatorTest, SequentialAndAligned)
{
    BumpAllocator a(0x1000, 0x1fff);
    Addr p1 = a.alloc(10, 8);
    Addr p2 = a.alloc(4, 8);
    EXPECT_EQ(p1, 0x1000u);
    EXPECT_EQ(p2, 0x1010u); // 10 rounded up to alignment
    EXPECT_EQ(p2 % 8, 0u);
    EXPECT_EQ(a.used(), 0x14u);
}

TEST(BumpAllocatorTest, RewindIsLifo)
{
    BumpAllocator a(0x1000, 0x1fff);
    Addr mark0 = a.mark();
    a.alloc(64);
    Addr mark1 = a.mark();
    a.alloc(64);
    a.rewind(mark1);
    EXPECT_EQ(a.mark(), mark1);
    a.rewind(mark0);
    EXPECT_EQ(a.used(), 0u);
    // Memory can be reused after a rewind.
    EXPECT_EQ(a.alloc(8), 0x1000u);
}

TEST(BumpAllocatorTest, ExhaustionPanics)
{
    BumpAllocator a(0x1000, 0x10ff);
    a.alloc(0x80);
    EXPECT_DEATH(a.alloc(0x100), "exhausted");
}

TEST(LayoutTest, RegionsAreDisjoint)
{
    // The address map assumptions the measurement code relies on:
    // code/metadata below the heap, frames and thread block above.
    EXPECT_LT(mem::handler_base, mem::native_base);
    EXPECT_LT(mem::native_limit, mem::code_base);
    EXPECT_LT(mem::code_limit, mem::heap_base);
    EXPECT_LT(mem::metadata_limit, mem::heap_base);
    EXPECT_LT(mem::heap_limit, mem::frame_base);
    EXPECT_LT(mem::frame_limit, mem::thread_base);
    // Handler table: 128-byte slots for up to 256 opcodes fit below
    // the native region.
    EXPECT_LE(mem::handler_base + 256 * mem::handler_slot_bytes,
              mem::native_base);
}
