/**
 * @file
 * Unit tests for the persistence layer: wire primitives, snapshot
 * round-trips and corruption detection, WAL framing and torn-tail
 * tolerance, the DurableSession cadence/rotation machinery, and the
 * state export/restore hooks it all rests on.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "persist/durable.hh"
#include "persist/recovery.hh"
#include "persist/snapshot.hh"
#include "persist/wal.hh"
#include "persist/wire.hh"
#include "sim/trace.hh"

using namespace pift;

namespace
{

sim::TraceRecord
memRec(SeqNum seq, ProcId pid, sim::MemKind kind, Addr start,
       Addr len = 4)
{
    sim::TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = pid;
    r.op = kind == sim::MemKind::Load ? isa::Op::Ldr : isa::Op::Str;
    r.mem_kind = kind;
    r.mem_start = start;
    r.mem_end = start + len - 1;
    return r;
}

sim::ControlEvent
control(SeqNum seq, sim::ControlKind kind, ProcId pid, Addr start,
        Addr len, uint32_t id)
{
    sim::ControlEvent ev;
    ev.seq = seq;
    ev.kind = kind;
    ev.pid = pid;
    ev.start = start;
    ev.end = start + len - 1;
    ev.id = id;
    return ev;
}

/**
 * A small two-process workload that exercises every journaled
 * transition: sources, tainted loads, in-window taints, out-of-window
 * untaints, spilling pressure (with a small cache), and sink checks.
 */
sim::Trace
workloadTrace()
{
    sim::Trace t;
    SeqNum seq = 0;
    t.controls.push_back(control(0, sim::ControlKind::RegisterSource,
                                 1, 0x1000, 64, 7));
    t.controls.push_back(control(0, sim::ControlKind::RegisterSource,
                                 2, 0x8000, 32, 8));
    for (int rep = 0; rep < 12; ++rep) {
        ProcId pid = (rep % 2) ? 2 : 1;
        Addr base = pid == 1 ? 0x1000 : 0x8000;
        Addr dst = (pid == 1 ? 0x2000 : 0x9000) +
            static_cast<Addr>(rep) * 0x40;
        t.records.push_back(memRec(seq++, pid, sim::MemKind::Load,
                                   base + (rep % 4) * 8));
        t.records.push_back(memRec(seq++, pid, sim::MemKind::Store,
                                   dst));
        t.records.push_back(memRec(seq++, pid, sim::MemKind::Store,
                                   dst + 0x10));
        // A far store that usually lands outside the window budget.
        t.records.push_back(memRec(seq++, pid, sim::MemKind::Store,
                                   dst + 0x400));
        if (rep % 3 == 2) {
            t.controls.push_back(
                control(seq, sim::ControlKind::CheckSink, pid, dst,
                        16, 100 + static_cast<uint32_t>(rep)));
        }
    }
    t.controls.push_back(control(seq, sim::ControlKind::CheckSink, 1,
                                 0x7000, 16, 200));
    return t;
}

core::TaintStorageParams
smallStorage()
{
    core::TaintStorageParams sp;
    sp.entries = 4; // tiny: forces spill traffic in the workload
    sp.policy = core::EvictPolicy::LruSpill;
    return sp;
}

/** Run the workload once and capture full final state. */
persist::SnapshotData
goldenRun(const sim::Trace &trace,
          const core::TaintStorageParams &sp)
{
    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    sim::replay(trace, tracker);
    persist::SnapshotData data;
    data.storage = storage.exportState();
    data.tracker = tracker.exportState();
    return data;
}

} // namespace

TEST(Wire, Crc32KnownVector)
{
    // The canonical IEEE CRC-32 check value.
    const char *s = "123456789";
    EXPECT_EQ(persist::crc32(s, 9), 0xcbf43926u);
    // Chaining partial computations matches one-shot.
    uint32_t part = persist::crc32(s, 4);
    EXPECT_EQ(persist::crc32(s + 4, 5, part), 0xcbf43926u);
    EXPECT_EQ(persist::crc32("", 0), 0u);
}

TEST(Wire, WriterReaderRoundTrip)
{
    persist::ByteWriter w;
    w.put8(0xab);
    w.put16(0x1234);
    w.put32(0xdeadbeef);
    w.put64(0x0123456789abcdefull);
    EXPECT_EQ(w.size(), 15u);

    persist::ByteReader r(w.bytes());
    EXPECT_EQ(r.get8(), 0xabu);
    EXPECT_EQ(r.get16(), 0x1234u);
    EXPECT_EQ(r.get32(), 0xdeadbeefu);
    EXPECT_EQ(r.get64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.bytesLeft(), 0u);

    // Reading past the end fails sticky, never crashes.
    EXPECT_EQ(r.get32(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Wire, LittleEndianLayout)
{
    persist::ByteWriter w;
    w.put32(0x04030201);
    const std::string &b = w.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(static_cast<uint8_t>(b[0]), 1);
    EXPECT_EQ(static_cast<uint8_t>(b[3]), 4);
}

TEST(StorageState, ExportRestoreRoundTrip)
{
    auto sp = smallStorage();
    core::TaintStorage a(sp);
    // Build up entries, spill pressure, and a split.
    for (int i = 0; i < 8; ++i)
        a.insert(1, taint::AddrRange(0x1000 + i * 0x100,
                                     0x1000 + i * 0x100 + 0x1f));
    a.insert(2, taint::AddrRange(0x9000, 0x90ff));
    a.remove(2, taint::AddrRange(0x9040, 0x904f)); // split
    a.query(1, taint::AddrRange(0x1000, 0x101f));  // LRU refresh

    auto state = a.exportState();
    core::TaintStorage b(sp);
    b.restoreState(state);
    EXPECT_EQ(b.exportState(), state);
    EXPECT_EQ(b.bytes(), a.bytes());
    EXPECT_EQ(b.rangeCount(), a.rangeCount());

    // The restored instance must behave identically from here on:
    // same eviction victims, same query answers.
    for (int i = 0; i < 6; ++i) {
        taint::AddrRange r(0x4000 + i * 0x80, 0x4000 + i * 0x80 + 7);
        EXPECT_EQ(a.insert(3, r), b.insert(3, r)) << i;
    }
    taint::AddrRange probe(0x1100, 0x110f);
    EXPECT_EQ(a.query(1, probe), b.query(1, probe));
    EXPECT_EQ(a.exportState(), b.exportState());
}

TEST(StorageState, CanonicalOrderIsLastUse)
{
    auto sp = smallStorage();
    core::TaintStorage s(sp);
    s.insert(1, taint::AddrRange(0x100, 0x10f));
    s.insert(2, taint::AddrRange(0x200, 0x20f));
    s.query(1, taint::AddrRange(0x100, 0x100)); // 1 now most recent
    auto state = s.exportState();
    ASSERT_EQ(state.entries.size(), 2u);
    EXPECT_EQ(state.entries[0].pid, 2u);
    EXPECT_EQ(state.entries[1].pid, 1u);
    EXPECT_LT(state.entries[0].last_use, state.entries[1].last_use);
}

TEST(Snapshot, EncodeDecodeRoundTrip)
{
    auto data = goldenRun(workloadTrace(), smallStorage());
    data.epoch = 3;
    std::string bytes = persist::encodeSnapshot(data);
    auto decoded = persist::decodeSnapshot(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.message();
    EXPECT_EQ(decoded.value().epoch, 3u);
    EXPECT_EQ(decoded.value().storage, data.storage);
    EXPECT_EQ(persist::encodeSnapshot(decoded.value()), bytes);
}

TEST(Snapshot, EveryBitFlipIsDetected)
{
    auto data = goldenRun(workloadTrace(), smallStorage());
    std::string bytes = persist::encodeSnapshot(data);
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(
            static_cast<uint8_t>(mutated[i]) ^
            (1u << (i % 8)));
        auto decoded = persist::decodeSnapshot(mutated);
        EXPECT_FALSE(decoded.ok()) << "flip at byte " << i
                                   << " parsed silently";
    }
}

TEST(Snapshot, EveryTruncationIsDetected)
{
    auto data = goldenRun(workloadTrace(), smallStorage());
    std::string bytes = persist::encodeSnapshot(data);
    for (size_t len = 0; len < bytes.size(); ++len) {
        auto decoded = persist::decodeSnapshot(bytes.substr(0, len));
        EXPECT_FALSE(decoded.ok()) << "truncation at " << len;
    }
}

TEST(Snapshot, AtomicWriteLeavesNoTmp)
{
    std::string path = ::testing::TempDir() + "/pift_snap_test.pift";
    persist::SnapshotData data;
    data.storage.params = smallStorage();
    ASSERT_TRUE(persist::writeSnapshotFile(path, data).ok());
    auto back = persist::readSnapshotFile(path);
    ASSERT_TRUE(back.ok()) << back.message();

    std::string tmp;
    EXPECT_FALSE(persist::readFileBytes(path + ".tmp", tmp).ok());
    std::remove(path.c_str());
}

TEST(Wal, RecordCodecRoundTrip)
{
    core::JournalRecord rec;
    rec.kind = core::JournalKind::SinkCheck;
    rec.verdict = core::SinkVerdict::MaybeTainted;
    rec.pid = 42;
    rec.start = 0x1000;
    rec.end = 0x10ff;
    rec.id = 9;
    rec.ltlt = 123456789;
    rec.used = 2;
    rec.records_seen = 777;
    rec.controls_seen = 13;

    std::string payload = persist::encodeJournalRecord(rec);
    EXPECT_EQ(payload.size(), persist::wal_payload_bytes);
    auto back = persist::decodeJournalRecord(payload);
    ASSERT_TRUE(back.ok()) << back.message();
    const auto &b = back.value();
    EXPECT_EQ(b.kind, rec.kind);
    EXPECT_EQ(b.verdict, rec.verdict);
    EXPECT_EQ(b.pid, rec.pid);
    EXPECT_EQ(b.start, rec.start);
    EXPECT_EQ(b.end, rec.end);
    EXPECT_EQ(b.id, rec.id);
    EXPECT_EQ(b.ltlt, rec.ltlt);
    EXPECT_EQ(b.used, rec.used);
    EXPECT_EQ(b.records_seen, rec.records_seen);
    EXPECT_EQ(b.controls_seen, rec.controls_seen);
}

TEST(Wal, WriteReadRoundTrip)
{
    std::string path = ::testing::TempDir() + "/pift_wal_test.pift";
    persist::WalWriter w;
    ASSERT_TRUE(w.open(path, 5, /*flush_each=*/false).ok());
    for (uint32_t i = 0; i < 20; ++i) {
        core::JournalRecord rec;
        rec.kind = static_cast<core::JournalKind>(
            i % core::journal_kind_count);
        rec.pid = i;
        rec.records_seen = i * 3;
        rec.controls_seen = i;
        ASSERT_TRUE(w.append(rec).ok());
    }
    ASSERT_TRUE(w.close().ok());
    EXPECT_TRUE(w.healthy());

    auto report = persist::readWalFile(path);
    ASSERT_TRUE(report.ok()) << report.message();
    const auto &r = report.value();
    EXPECT_TRUE(r.header_ok);
    EXPECT_FALSE(r.torn);
    EXPECT_EQ(r.epoch, 5u);
    ASSERT_EQ(r.records.size(), 20u);
    for (uint32_t i = 0; i < 20; ++i) {
        EXPECT_EQ(r.records[i].pid, i);
        EXPECT_EQ(r.records[i].records_seen, i * 3);
    }
    std::remove(path.c_str());
}

TEST(Wal, TornTailAtEveryByteKeepsValidPrefix)
{
    // Build a WAL of 5 records in memory, then truncate it at every
    // possible length: the reader must accept exactly the records
    // whose frames are complete and flag everything else as torn —
    // never reject a valid prefix, never accept a partial frame.
    std::string path = ::testing::TempDir() + "/pift_wal_torn.pift";
    persist::WalWriter w;
    ASSERT_TRUE(w.open(path, 1, false).ok());
    for (uint32_t i = 0; i < 5; ++i) {
        core::JournalRecord rec;
        rec.kind = core::JournalKind::StoreTaint;
        rec.pid = i + 1;
        ASSERT_TRUE(w.append(rec).ok());
    }
    ASSERT_TRUE(w.close().ok());
    std::string bytes;
    ASSERT_TRUE(persist::readFileBytes(path, bytes).ok());
    std::remove(path.c_str());
    ASSERT_EQ(bytes.size(), persist::wal_header_bytes +
                  5 * persist::wal_frame_bytes);

    for (size_t len = 0; len <= bytes.size(); ++len) {
        auto report = persist::readWalBytes(bytes.substr(0, len));
        if (len < persist::wal_header_bytes) {
            EXPECT_FALSE(report.header_ok) << len;
            EXPECT_TRUE(report.torn) << len;
            continue;
        }
        EXPECT_TRUE(report.header_ok) << len;
        size_t whole =
            (len - persist::wal_header_bytes) / persist::wal_frame_bytes;
        EXPECT_EQ(report.records.size(), whole) << len;
        bool exact = len == persist::wal_header_bytes +
            whole * persist::wal_frame_bytes;
        EXPECT_EQ(report.torn, !exact) << len;
        for (size_t i = 0; i < report.records.size(); ++i)
            EXPECT_EQ(report.records[i].pid, i + 1);
    }
}

TEST(Wal, BitFlipTruncatesAtCorruptRecord)
{
    std::string path = ::testing::TempDir() + "/pift_wal_flip.pift";
    persist::WalWriter w;
    ASSERT_TRUE(w.open(path, 1, false).ok());
    for (uint32_t i = 0; i < 4; ++i) {
        core::JournalRecord rec;
        rec.pid = i + 1;
        ASSERT_TRUE(w.append(rec).ok());
    }
    ASSERT_TRUE(w.close().ok());
    std::string bytes;
    ASSERT_TRUE(persist::readFileBytes(path, bytes).ok());
    std::remove(path.c_str());

    // Flip one payload bit of record 2 (0-based): records 0-1 must
    // survive, the rest must be rejected.
    size_t off = persist::wal_header_bytes +
        2 * persist::wal_frame_bytes + 8 + 3;
    bytes[off] = static_cast<char>(
        static_cast<uint8_t>(bytes[off]) ^ 0x10);
    auto report = persist::readWalBytes(bytes);
    EXPECT_TRUE(report.header_ok);
    EXPECT_TRUE(report.torn);
    ASSERT_EQ(report.records.size(), 2u);
    EXPECT_EQ(report.records[0].pid, 1u);
    EXPECT_EQ(report.records[1].pid, 2u);

    // A header flip invalidates the whole log.
    bytes[10] = static_cast<char>(
        static_cast<uint8_t>(bytes[10]) ^ 0x01);
    auto hdr = persist::readWalBytes(bytes);
    EXPECT_FALSE(hdr.header_ok);
    EXPECT_TRUE(hdr.records.empty());
}

TEST(ReplayFrom, ZeroCursorEqualsReplay)
{
    sim::Trace trace = workloadTrace();
    sim::TraceBuffer a, b;
    sim::replay(trace, a);
    sim::replayFrom(trace, b, 0, 0);
    EXPECT_EQ(a.trace().records.size(), b.trace().records.size());
    EXPECT_EQ(a.trace().controls.size(), b.trace().controls.size());
}

TEST(ReplayFrom, SuffixDeliversExactlyTheRemainder)
{
    sim::Trace trace = workloadTrace();
    // For every possible cursor reachable by a prefix of the merged
    // stream, prefix + suffix must reproduce the full delivery.
    sim::TraceBuffer full;
    sim::replay(trace, full);
    const size_t nr = trace.records.size();
    for (size_t records_done = 0; records_done <= nr;
         records_done += 7) {
        // controls delivered before record index records_done:
        size_t controls_done = 0;
        while (controls_done < trace.controls.size() &&
               trace.controls[controls_done].seq <
                   records_done + (records_done < nr ? 1 : 0))
            ++controls_done;
        // (controls with seq <= ri are delivered before record ri,
        // so after consuming records [0, records_done) every control
        // with seq < records_done+1 is out — unless the stream ended.)
        sim::TraceBuffer tail;
        sim::replayFrom(trace, tail, records_done, controls_done);
        EXPECT_EQ(tail.trace().records.size(), nr - records_done);
        EXPECT_EQ(tail.trace().controls.size(),
                  trace.controls.size() - controls_done);
    }
}

TEST(Durable, JournalMatchesLiveRun)
{
    std::string dir = ::testing::TempDir() + "/pift_durable_live";
    sim::Trace trace = workloadTrace();
    auto sp = smallStorage();

    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(
        storage, tracker, {dir, /*snapshot_every=*/0, true});
    ASSERT_TRUE(session.start().ok());
    tracker.setJournal(&session);
    sim::replay(trace, tracker);
    ASSERT_TRUE(session.close().ok());
    EXPECT_TRUE(session.healthy());
    EXPECT_GT(session.recordsLogged(), 0u);

    // Recovery from WAL-only (implicit epoch-0 snapshot) must land on
    // the live run's exact storage state, sinks, and cursor.
    auto rec = persist::recover(dir, sp);
    EXPECT_FALSE(rec.corruption_detected) << rec.detail;
    EXPECT_EQ(rec.wal_applied, session.recordsLogged());
    EXPECT_EQ(rec.state.storage, storage.exportState());
    auto live = tracker.exportState();
    EXPECT_EQ(rec.state.tracker.records_seen, live.records_seen);
    EXPECT_EQ(rec.state.tracker.controls_seen, live.controls_seen);
    ASSERT_EQ(rec.state.tracker.sinks.size(), live.sinks.size());
    for (size_t i = 0; i < live.sinks.size(); ++i) {
        EXPECT_EQ(rec.state.tracker.sinks[i].verdict,
                  live.sinks[i].verdict) << i;
        EXPECT_EQ(rec.state.tracker.sinks[i].sink_id,
                  live.sinks[i].sink_id) << i;
    }
}

TEST(Durable, CadenceSnapshotsAndRotation)
{
    std::string dir = ::testing::TempDir() + "/pift_durable_cadence";
    sim::Trace trace = workloadTrace();
    auto sp = smallStorage();

    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(storage, tracker,
                                    {dir, /*snapshot_every=*/10, true});
    ASSERT_TRUE(session.start().ok());
    tracker.setJournal(&session);
    sim::replay(trace, tracker);
    ASSERT_TRUE(session.close().ok());
    EXPECT_TRUE(session.healthy());
    EXPECT_GT(session.snapshotsTaken(), 1u);
    EXPECT_EQ(session.epoch(), session.snapshotsTaken());

    // Snapshot on disk is at the session's epoch; WAL was rotated to
    // match; recovery still reproduces the live state exactly.
    auto snap = persist::readSnapshotFile(persist::snapshotPath(dir));
    ASSERT_TRUE(snap.ok()) << snap.message();
    EXPECT_EQ(snap.value().epoch, session.epoch());
    auto wal = persist::readWalFile(persist::walPath(dir));
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value().epoch, session.epoch());

    auto rec = persist::recover(dir, sp);
    EXPECT_FALSE(rec.corruption_detected) << rec.detail;
    EXPECT_EQ(rec.state.storage, storage.exportState());
    EXPECT_EQ(rec.state.tracker.records_seen,
              tracker.exportState().records_seen);
}

TEST(Durable, OnDemandSnapshotThenRestore)
{
    std::string dir = ::testing::TempDir() + "/pift_durable_demand";
    sim::Trace trace = workloadTrace();
    auto sp = smallStorage();

    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(storage, tracker, {dir, 0, true});
    ASSERT_TRUE(session.start().ok());
    tracker.setJournal(&session);
    sim::replay(trace, tracker);
    ASSERT_TRUE(session.snapshotNow().ok());
    ASSERT_TRUE(session.close().ok());

    // Restore into fresh objects and compare against the originals.
    auto rec = persist::recover(dir, sp);
    ASSERT_FALSE(rec.corruption_detected) << rec.detail;
    core::TaintStorage storage2(sp);
    core::PiftTracker tracker2(core::PiftParams{}, storage2);
    persist::restoreInto(rec, storage2, tracker2);
    EXPECT_EQ(storage2.exportState(), storage.exportState());
    EXPECT_EQ(tracker2.sinkResults().size(),
              tracker.sinkResults().size());
    EXPECT_EQ(tracker2.controlsSeen(), tracker.controlsSeen());
}
