/**
 * @file
 * Live prevention mode: with a hardware module attached for
 * synchronous verdicts, sinks can block tainted payloads before
 * delivery and the kernel module raises leak alerts to the upper
 * layer (Section 3.1) — the prevention side of the paper's
 * prevention-vs-detection trade.
 */

#include <gtest/gtest.h>

#include "core/hw_module.hh"
#include "core/taint_store.hh"
#include "droidbench/app.hh"
#include "droidbench/helpers.hh"

using namespace pift;
using droidbench::AppContext;

namespace
{

/** A context with live tracking + synchronous hardware attached. */
struct LiveDevice
{
    LiveDevice()
        : tracker({13, 3, true}, store), hw(tracker)
    {
        ctx.hub.addSink(&tracker);
        ctx.env.module().attachHw(&hw);
        ctx.env.module().setLeakAlert(
            [this](const taint::AddrRange &, uint32_t sink_id) {
                alerts.push_back(sink_id);
            });
    }

    AppContext ctx;
    core::IdealRangeStore store;
    core::PiftTracker tracker;
    core::HwModule hw;
    std::vector<uint32_t> alerts;
};

dalvik::MethodId
leakyMain(AppContext &ctx)
{
    dalvik::MethodBuilder b("Prevent.main", droidbench::app_nregs, 0);
    droidbench::emitSource(b, ctx.env.get_device_id, 10);
    droidbench::emitConst(ctx, b, 11, "id=");
    droidbench::emitConcat(ctx, b, 12, 11, 10);
    droidbench::emitSms(ctx, b, 12);
    b.returnVoid();
    return ctx.dex.addMethod(b.finish());
}

dalvik::MethodId
benignMain(AppContext &ctx)
{
    dalvik::MethodBuilder b("Benign.main", droidbench::app_nregs, 0);
    droidbench::emitConst(ctx, b, 10, "all good");
    droidbench::emitSms(ctx, b, 10);
    b.returnVoid();
    return ctx.dex.addMethod(b.finish());
}

} // namespace

TEST(Prevention, TaintedPayloadBlocked)
{
    LiveDevice d;
    d.ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    auto main_id = leakyMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.ctx.env.sinkCalls().size(), 1u);
    EXPECT_TRUE(d.ctx.env.sinkCalls()[0].blocked);
    EXPECT_EQ(d.ctx.env.sinkCalls()[0].payload, "<blocked>");
}

TEST(Prevention, LeakAlertFires)
{
    LiveDevice d;
    d.ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    auto main_id = leakyMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.alerts.size(), 1u);
    EXPECT_EQ(d.alerts[0],
              static_cast<uint32_t>(android::SinkType::Sms));
}

TEST(Prevention, BenignPayloadDelivered)
{
    LiveDevice d;
    d.ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    auto main_id = benignMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.ctx.env.sinkCalls().size(), 1u);
    EXPECT_FALSE(d.ctx.env.sinkCalls()[0].blocked);
    EXPECT_EQ(d.ctx.env.sinkCalls()[0].payload, "all good");
    EXPECT_TRUE(d.alerts.empty());
}

TEST(Prevention, DetectPolicyDelivers)
{
    // Default Detect policy: the verdict is recorded (and alerted),
    // but the data still flows — detection, not prevention.
    LiveDevice d;
    auto main_id = leakyMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.ctx.env.sinkCalls().size(), 1u);
    EXPECT_FALSE(d.ctx.env.sinkCalls()[0].blocked);
    EXPECT_NE(d.ctx.env.sinkCalls()[0].payload.find("356938"),
              std::string::npos);
    EXPECT_EQ(d.alerts.size(), 1u);
}

TEST(Prevention, TransientCommandFaultsAreRetried)
{
    // The kernel module re-issues a command that fails transiently;
    // a fault that clears within the retry budget is invisible to the
    // framework.
    LiveDevice d;
    d.ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    unsigned failures = 0;
    d.hw.setCommandFaultHook([&failures] {
        return ++failures <= 2; // first two attempts fail
    });
    auto main_id = benignMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.ctx.env.sinkCalls().size(), 1u);
    EXPECT_EQ(d.ctx.env.sinkCalls()[0].verdict,
              core::SinkVerdict::Clean);
    EXPECT_FALSE(d.ctx.env.sinkCalls()[0].blocked);
    EXPECT_GT(failures, 2u); // the retry actually happened
}

TEST(Prevention, PersistentCommandFaultDegradesToMaybe)
{
    // A command port that never answers: after max_cmd_retries the
    // module refuses to call the data clean — MaybeTainted, which
    // prevention mode blocks, but no leak alert (nothing was found).
    LiveDevice d;
    d.ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    d.hw.setCommandFaultHook([] { return true; });
    auto main_id = benignMain(d.ctx);
    d.ctx.vm.boot();
    d.ctx.vm.execute(main_id);

    ASSERT_EQ(d.ctx.env.sinkCalls().size(), 1u);
    EXPECT_EQ(d.ctx.env.sinkCalls()[0].verdict,
              core::SinkVerdict::MaybeTainted);
    EXPECT_TRUE(d.ctx.env.sinkCalls()[0].blocked);
    EXPECT_TRUE(d.alerts.empty());
}

TEST(Prevention, WithoutHardwareChecksAreOfflineOnly)
{
    // No hardware module attached: the sink cannot block (the check
    // returns "unknown"); the event is still in the captured stream.
    AppContext ctx;
    ctx.env.setSinkPolicy(android::SinkPolicy::Prevent);
    auto main_id = leakyMain(ctx);
    ctx.vm.boot();
    ctx.vm.execute(main_id);

    ASSERT_EQ(ctx.env.sinkCalls().size(), 1u);
    EXPECT_FALSE(ctx.env.sinkCalls()[0].blocked);
    unsigned checks = 0;
    for (const auto &ev : ctx.buffer.trace().controls)
        checks += ev.kind == sim::ControlKind::CheckSink;
    EXPECT_EQ(checks, 1u);
}
