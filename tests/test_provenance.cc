/**
 * @file
 * Provenance flight-recorder tests: ring semantics (bounded
 * overwrite, eviction counts, global-ring merge), the explain engine
 * on hand-built record scenarios (complete chains, untaint, clean,
 * degradation causes), exporter output shape, determinism of the
 * registry attribution differential across --jobs widths, and the
 * PIFT_PROVENANCE=OFF stub contract.
 *
 * The file compiles and passes in both PIFT_PROVENANCE modes: with
 * OFF, the Recorder is an inline stub that records nothing, and the
 * assertions that require real collection branch on compiledIn().
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/attribution.hh"
#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "droidbench/app.hh"
#include "provenance/provenance.hh"
#include "sim/batch.hh"

using namespace pift;
namespace prov = pift::provenance;

namespace
{

/** A small labelled slice of the registry (kept fast for ctest). */
std::vector<analysis::LabelledTrace>
smallSuite(size_t napps)
{
    std::vector<analysis::LabelledTrace> out;
    const auto &apps = droidbench::droidBenchApps();
    for (size_t i = 0; i < apps.size() && out.size() < napps; ++i) {
        auto run = droidbench::runApp(apps[i]);
        out.push_back({apps[i].name, apps[i].leaks,
                       std::move(run.trace)});
    }
    return out;
}

size_t
countLines(const std::string &s)
{
    size_t n = 0;
    for (char c : s)
        n += c == '\n';
    return n;
}

} // namespace

TEST(ProvenanceRing, BoundedOverwriteOldestFirst)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::RecorderParams p;
    p.ring_capacity = 4;
    prov::Recorder rec(p);
    for (uint32_t i = 0; i < 10; ++i) {
        rec.setCursor(i);
        rec.record(prov::ProvKind::TaintWrite,
                   prov::ProvCause::TaintHit, 7, i, i);
    }
    EXPECT_EQ(rec.totalRecorded(), 10u);
    EXPECT_EQ(rec.totalEvicted(), 6u);
    EXPECT_EQ(rec.evictedFor(7), 6u);
    auto recs = rec.recordsFor(7);
    ASSERT_EQ(recs.size(), 4u);
    // Newest four survive, oldest first.
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].start, 6u + i);
        EXPECT_EQ(recs[i].seq, 6u + i);
    }
}

TEST(ProvenanceRing, GlobalRecordsMergeInOrder)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    rec.setCursor(1);
    rec.record(prov::ProvKind::SourceRead, prov::ProvCause::None, 1,
               0x10, 0x1f, 2);
    rec.recordGlobal(prov::ProvKind::ClearAll,
                     prov::ProvCause::None);
    rec.setCursor(5);
    rec.record(prov::ProvKind::TaintWrite,
               prov::ProvCause::TaintHit, 1, 0x20, 0x21);
    auto recs = rec.recordsFor(1);
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].kind, prov::ProvKind::SourceRead);
    EXPECT_EQ(recs[1].kind, prov::ProvKind::ClearAll);
    EXPECT_EQ(recs[2].kind, prov::ProvKind::TaintWrite);
    // Global records visible to every pid's view.
    ASSERT_EQ(rec.globalRecords().size(), 1u);
    // Another pid only sees the global ring.
    EXPECT_EQ(rec.recordsFor(42).size(), 1u);
    EXPECT_EQ(rec.pids(), (std::vector<ProcId>{1}));
}

namespace
{

/** Tracker-shaped leak scenario: source → load → write → sink. */
void
emitLeak(prov::Recorder &rec, ProcId pid)
{
    rec.setCursor(4);
    rec.record(prov::ProvKind::SourceRead, prov::ProvCause::None,
               pid, 0x100, 0x10f, 2);
    rec.setCursor(10);
    rec.record(prov::ProvKind::WindowOpen,
               prov::ProvCause::TaintHit, pid, 0x100, 0x101, 0, 9, 0);
    rec.setCursor(11);
    rec.record(prov::ProvKind::TaintWrite,
               prov::ProvCause::TaintHit, pid, 0x200, 0x201, 0, 9, 1);
}

} // namespace

TEST(ProvenanceExplain, TaintedSinkYieldsCompleteChain)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::TaintHit,
               1, 0x1f0, 0x20f, 1, 0, 0, 1);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 1u);
    const auto &e = exps[0];
    EXPECT_EQ(e.verdict, 1u);
    EXPECT_TRUE(e.complete);
    ASSERT_EQ(e.chain.size(), 4u);
    EXPECT_EQ(e.chain.front().kind, prov::ProvKind::SourceRead);
    EXPECT_EQ(e.chain[1].kind, prov::ProvKind::WindowOpen);
    EXPECT_EQ(e.chain[2].kind, prov::ProvKind::TaintWrite);
    EXPECT_EQ(e.chain.back().kind, prov::ProvKind::SinkCheck);
}

TEST(ProvenanceExplain, UntaintClearsCoverage)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(15);
    rec.record(prov::ProvKind::Untaint,
               prov::ProvCause::WindowClosed, 1, 0x200, 0x201);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::None, 1,
               0x1f0, 0x20f, 1, 0, 0, 0);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 1u);
    EXPECT_EQ(exps[0].verdict, 0u);
    // Clean and provably so: no residual coverage at the sink.
    EXPECT_TRUE(exps[0].chain.empty());
}

TEST(ProvenanceExplain, PartialUntaintSplitsCoverage)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    rec.setCursor(4);
    rec.record(prov::ProvKind::SourceRead, prov::ProvCause::None, 1,
               0x100, 0x10f, 2);
    // Untaint a hole in the middle of the source range.
    rec.setCursor(6);
    rec.record(prov::ProvKind::Untaint,
               prov::ProvCause::WindowClosed, 1, 0x104, 0x107);
    // A sink over the hole is clean; over the remainder, tainted.
    rec.setCursor(8);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::None, 1,
               0x104, 0x107, 1, 0, 0, 0);
    rec.setCursor(9);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::TaintHit,
               1, 0x108, 0x10b, 1, 0, 0, 1);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 2u);
    EXPECT_TRUE(exps[0].chain.empty());
    EXPECT_TRUE(exps[1].complete);
    ASSERT_EQ(exps[1].chain.size(), 2u);
    EXPECT_EQ(exps[1].chain.front().kind,
              prov::ProvKind::SourceRead);
}

TEST(ProvenanceExplain, MaybeTaintedCitesEarliestDegradation)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(12);
    rec.record(prov::ProvKind::StorageLoss,
               prov::ProvCause::LruDropEviction, 1, 0x300, 0x30f);
    rec.setCursor(14);
    rec.record(prov::ProvKind::FaultInjected,
               prov::ProvCause::InjectedDrop, 1, 0x400, 0x40f);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck,
               prov::ProvCause::StorageSaturated, 1, 0x500, 0x50f, 1,
               0, 0, 2);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 1u);
    EXPECT_EQ(exps[0].verdict, 2u);
    ASSERT_TRUE(exps[0].has_cause);
    // The *earliest* degradation record wins.
    EXPECT_EQ(exps[0].cause.kind, prov::ProvKind::StorageLoss);
    EXPECT_EQ(exps[0].cause.cause,
              prov::ProvCause::LruDropEviction);
}

TEST(ProvenanceExplain, ClearAllResetsChainAndCauseScan)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(12);
    rec.record(prov::ProvKind::StreamLoss,
               prov::ProvCause::FrontEndLoss, 1);
    rec.setCursor(13);
    rec.recordGlobal(prov::ProvKind::ClearAll,
                     prov::ProvCause::None);
    // After the wipe: the old taint and the old degradation are both
    // out of scope.
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::None, 1,
               0x1f0, 0x20f, 1, 0, 0, 0);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 1u);
    EXPECT_TRUE(exps[0].chain.empty());
    EXPECT_FALSE(exps[0].has_cause);
}

TEST(ProvenanceExplain, TrackerIntegrationExplainsRealReplay)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    const auto &apps = droidbench::malwareApps();
    auto run = droidbench::runApp(apps.front()); // malware_lgroot
    core::TaintStorage storage(core::TaintStorageParams{});
    prov::RecorderParams rp;
    rp.ring_capacity = 1u << 19;
    prov::Recorder rec(rp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    storage.setRecorder(&rec);
    tracker.setRecorder(&rec);
    sim::replayBatched(run.trace, tracker);

    EXPECT_EQ(rec.totalEvicted(), 0u);
    auto exps = prov::explainAll(rec);
    ASSERT_EQ(exps.size(), tracker.sinkResults().size());
    for (const auto &e : exps) {
        if (e.verdict == 1) {
            EXPECT_TRUE(e.complete);
            ASSERT_FALSE(e.chain.empty());
            EXPECT_EQ(e.chain.front().kind,
                      prov::ProvKind::SourceRead);
        } else if (e.verdict == 0) {
            EXPECT_TRUE(e.chain.empty());
        }
    }
}

TEST(ProvenanceExport, JsonlOneLinePerObject)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::TaintHit,
               1, 0x1f0, 0x20f, 1, 0, 0, 1);
    auto recs = rec.recordsFor(1);
    std::ostringstream ros;
    prov::writeRecordsJsonl(ros, recs);
    EXPECT_EQ(countLines(ros.str()), recs.size());

    auto exps = prov::explainPid(rec, 1);
    std::ostringstream eos;
    prov::writeExplanationsJsonl(eos, exps);
    EXPECT_EQ(countLines(eos.str()), exps.size());
    EXPECT_NE(eos.str().find("\"complete\":true"),
              std::string::npos);
}

TEST(ProvenanceExport, DotGraphShape)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::TaintHit,
               1, 0x1f0, 0x20f, 1, 0, 0, 1);
    std::ostringstream os;
    prov::writeFlowGraphDot(os, prov::explainPid(rec, 1), "t");
    const std::string dot = os.str();
    EXPECT_EQ(dot.rfind("digraph", 0), 0u);
    EXPECT_NE(dot.find("source-read"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(ProvenanceDeterminism, DifferentialIdenticalAcrossJobs)
{
    auto set = smallSuite(8);
    analysis::AttributionConfig one;
    one.jobs = 1;
    analysis::AttributionConfig four;
    four.jobs = 4;
    auto a = analysis::attributionDifferential(set, one);
    auto b = analysis::attributionDifferential(set, four);
    EXPECT_EQ(analysis::formatAttributionTable(a),
              analysis::formatAttributionTable(b));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].records, b[i].records);
        EXPECT_EQ(a[i].ok, b[i].ok);
        EXPECT_TRUE(a[i].ok);
    }
}

TEST(ProvenanceDeterminism, FaultSweepIdenticalAcrossJobs)
{
    auto set = smallSuite(6);
    analysis::FaultAttributionConfig one;
    one.jobs = 1;
    analysis::FaultAttributionConfig two;
    two.jobs = 4;
    auto a = analysis::faultAttributionSweep(set, one);
    auto b = analysis::faultAttributionSweep(set, two);
    EXPECT_EQ(analysis::formatFaultAttributionTable(a),
              analysis::formatFaultAttributionTable(b));
    EXPECT_TRUE(analysis::faultAttributionHolds(a));
    EXPECT_TRUE(analysis::faultAttributionHolds(b));
}

TEST(ProvenanceCompileOut, StubOrRealMatchesCompiledIn)
{
    prov::Recorder rec;
    rec.setCursor(3);
    rec.record(prov::ProvKind::SourceRead, prov::ProvCause::None, 1,
               0x10, 0x1f, 2);
    if (prov::compiledIn()) {
        EXPECT_EQ(rec.totalRecorded(), 1u);
        EXPECT_EQ(rec.cursor(), 3u);
    } else {
        // The stub has the full API but records nothing.
        EXPECT_EQ(rec.totalRecorded(), 0u);
        EXPECT_EQ(rec.cursor(), 0u);
        EXPECT_TRUE(rec.pids().empty());
        EXPECT_TRUE(rec.recordsFor(1).empty());
        EXPECT_TRUE(prov::explainAll(rec).empty());
    }
    // PIFT_PROV through a null pointer must be a no-op either way
    // (arguments unevaluated in OFF builds).
    prov::Recorder *null_rec = nullptr;
    PIFT_PROV(null_rec, record(prov::ProvKind::Untaint,
                               prov::ProvCause::WindowClosed, 1));
    SUCCEED();
}

TEST(ProvenanceFormat, RendersVerdictAndChain)
{
    if (!prov::compiledIn())
        GTEST_SKIP() << "PIFT_PROVENANCE=OFF";
    prov::Recorder rec;
    emitLeak(rec, 1);
    rec.setCursor(20);
    rec.record(prov::ProvKind::SinkCheck, prov::ProvCause::TaintHit,
               1, 0x1f0, 0x20f, 1, 0, 0, 1);
    auto exps = prov::explainPid(rec, 1);
    ASSERT_EQ(exps.size(), 1u);
    const std::string text = prov::formatExplanation(exps[0]);
    EXPECT_NE(text.find("TAINTED"), std::string::npos);
    EXPECT_NE(text.find("complete chain"), std::string::npos);
    EXPECT_NE(text.find("source-read"), std::string::npos);
}
