/**
 * @file
 * The crash-point recovery differential (DESIGN.md §11).
 *
 * For real app traces run through the full durable stack, every
 * deterministically planned crash point (truncation and bit flips at
 * arbitrary byte offsets of the WAL and snapshot) must land in one
 * of exactly two outcomes:
 *
 *  - EXACT: recovery + resumed replay reproduces the uncrashed run's
 *    storage state, verdict stream, and cursor bit-for-bit;
 *  - DETECTED: the corruption is reported, and the resumed run is
 *    conservative — it never answers Clean where the golden run saw
 *    Tainted (zero silent false negatives) and never invents a
 *    Tainted verdict (zero false positives).
 *
 * There is no third bucket. The sweep is also required to be
 * deterministic at any --jobs width.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/degradation.hh"
#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "droidbench/app.hh"
#include "exec/thread_pool.hh"
#include "faults/crash_point.hh"
#include "persist/durable.hh"
#include "persist/recovery.hh"
#include "persist/wire.hh"
#include "sim/trace.hh"

using namespace pift;

namespace
{

/**
 * The DroidBench traces journal only a handful of transitions (one
 * source, one leak, one sink). Extend them with a synthetic
 * taint-heavy tail — extra processes doing tainted loads, in- and
 * out-of-window stores, and periodic sink checks — so the cadence
 * snapshot fires several times and the WAL carries a realistic record
 * mix for the crash sweep to attack.
 */
sim::Trace
extendTrace(sim::Trace t, int reps)
{
    SeqNum seq = t.records.size();
    auto rec = [&](ProcId pid, sim::MemKind kind, Addr start) {
        sim::TraceRecord r;
        r.seq = seq;
        r.local_seq = seq;
        r.pid = pid;
        r.op = kind == sim::MemKind::Load ? isa::Op::Ldr
                                          : isa::Op::Str;
        r.mem_kind = kind;
        r.mem_start = start;
        r.mem_end = start + 3;
        t.records.push_back(r);
        ++seq;
    };
    auto ctl = [&](sim::ControlKind kind, ProcId pid, Addr start,
                   Addr len, uint32_t id) {
        sim::ControlEvent ev;
        ev.seq = seq;
        ev.kind = kind;
        ev.pid = pid;
        ev.start = start;
        ev.end = start + len - 1;
        ev.id = id;
        t.controls.push_back(ev);
    };
    ctl(sim::ControlKind::RegisterSource, 61, 0x1000, 64, 71);
    ctl(sim::ControlKind::RegisterSource, 62, 0x8000, 32, 72);
    for (int rep = 0; rep < reps; ++rep) {
        ProcId pid = (rep % 2) ? 62 : 61;
        Addr src = pid == 61 ? 0x1000 : 0x8000;
        Addr dst = (pid == 61 ? 0x2000 : 0x9000) +
            static_cast<Addr>(rep) * 0x40;
        rec(pid, sim::MemKind::Load, src + (rep % 4) * 8);
        rec(pid, sim::MemKind::Store, dst);
        rec(pid, sim::MemKind::Store, dst + 0x10);
        // Usually lands outside the window budget (untaint path).
        rec(pid, sim::MemKind::Store, dst + 0x400);
        if (rep % 3 == 2)
            ctl(sim::ControlKind::CheckSink, pid, dst, 16,
                500 + static_cast<uint32_t>(rep));
    }
    ctl(sim::ControlKind::CheckSink, 61, 0x2000, 16, 900);
    return t;
}

struct GoldenRun
{
    std::string dir;                 //!< durable artifacts to attack
    sim::Trace trace;
    core::TaintStorageParams storage_params;
    core::TaintStorageState storage; //!< final storage state
    core::TrackerState tracker;      //!< final tracker state
    uint64_t wal_bytes = 0;
    uint64_t snapshot_bytes = 0;
};

/** Run @p trace through the durable stack, keeping the artifacts. */
GoldenRun
makeGolden(const sim::Trace &trace,
           const core::TaintStorageParams &sp, const std::string &dir,
           uint64_t snapshot_every)
{
    GoldenRun g;
    g.dir = dir;
    g.trace = trace;
    g.storage_params = sp;

    core::TaintStorage storage(sp);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(storage, tracker,
                                    {dir, snapshot_every, true});
    EXPECT_TRUE(session.start().ok());
    tracker.setJournal(&session);
    sim::replay(trace, tracker);
    EXPECT_TRUE(session.close().ok());
    EXPECT_TRUE(session.healthy());

    g.storage = storage.exportState();
    g.tracker = tracker.exportState();

    std::string bytes;
    if (persist::readFileBytes(persist::walPath(dir), bytes).ok())
        g.wal_bytes = bytes.size();
    if (persist::readFileBytes(persist::snapshotPath(dir), bytes).ok())
        g.snapshot_bytes = bytes.size();
    return g;
}

/** Copy the golden artifacts into a scratch dir the crash can eat. */
bool
cloneDir(const std::string &src, const std::string &dst)
{
    if (!persist::ensureDir(dst).ok())
        return false;
    for (const char *name : {"snapshot.pift", "wal.pift"}) {
        std::string bytes;
        if (persist::readFileBytes(src + "/" + name, bytes).ok() &&
            !persist::writeFileBytes(dst + "/" + name, bytes).ok())
            return false;
    }
    return true;
}

bool
sameSinkStream(const std::vector<core::SinkResult> &a,
               const std::vector<core::SinkResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].sink_id != b[i].sink_id || a[i].pid != b[i].pid ||
            !(a[i].range == b[i].range) ||
            a[i].tainted != b[i].tainted ||
            a[i].verdict != b[i].verdict ||
            a[i].at_records != b[i].at_records)
            return false;
    }
    return true;
}

/** Per-crash-point verdict, reduced into the sweep digest. */
struct PointOutcome
{
    std::string name;
    bool exact = false;
    bool detected = false;
    bool silent_fn = false;    //!< golden Tainted answered Clean
    bool false_positive = false;
    std::string why;           //!< first mismatch, for the report
};

/**
 * Crash at @p point, recover, resume the trace from the recovered
 * cursor, and classify the outcome against the golden run.
 */
PointOutcome
runCrashPoint(const GoldenRun &g, const faults::CrashPoint &point,
              const std::string &scratch)
{
    PointOutcome out;
    out.name = faults::crashPointName(point);
    if (!cloneDir(g.dir, scratch)) {
        out.why = "clone failed";
        return out;
    }
    if (Status s = faults::applyCrashPoint(point, scratch); !s.ok()) {
        out.why = "apply failed: " + s.message();
        return out;
    }

    auto rec = persist::recover(scratch, g.storage_params);
    core::TaintStorage storage(g.storage_params);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::restoreInto(rec, storage, tracker);
    sim::replayFrom(g.trace, tracker,
                    rec.state.tracker.records_seen,
                    rec.state.tracker.controls_seen);

    auto final_storage = storage.exportState();
    auto final_tracker = tracker.exportState();

    // The one invariant that holds in *every* outcome: the resumed
    // verdict stream is conservative w.r.t. golden. Same checks in
    // the same order; Tainted never lost, never invented.
    const auto &gs = g.tracker.sinks;
    const auto &rs = final_tracker.sinks;
    if (gs.size() != rs.size()) {
        out.why = "sink count diverged";
        out.silent_fn = true; // count as silent: checks disappeared
        return out;
    }
    for (size_t i = 0; i < gs.size(); ++i) {
        bool gold_taint = gs[i].verdict == core::SinkVerdict::Tainted;
        bool res_taint = rs[i].verdict == core::SinkVerdict::Tainted;
        bool res_clean = rs[i].verdict == core::SinkVerdict::Clean;
        if (gold_taint && res_clean)
            out.silent_fn = true;
        if (res_taint && !gold_taint)
            out.false_positive = true;
    }

    if (!rec.corruption_detected) {
        // Exact path: everything must match bit-for-bit.
        bool ok = final_storage == g.storage &&
            sameSinkStream(gs, rs) &&
            final_tracker.records_seen == g.tracker.records_seen &&
            final_tracker.controls_seen == g.tracker.controls_seen &&
            final_tracker.lossy == g.tracker.lossy &&
            final_tracker.global_loss == g.tracker.global_loss;
        out.exact = ok;
        if (!ok)
            out.why = "recovered state diverged: " + rec.detail;
    } else {
        out.detected = true;
        // Degraded path: the re-run from scratch still ends at the
        // same storage state (same events, same model), and the
        // conservative-verdict checks above did the rest.
        if (!(final_storage == g.storage)) {
            out.detected = false;
            out.why = "degraded re-run storage diverged";
        }
    }
    return out;
}

std::string
sweepDigest(const GoldenRun &g,
            const std::vector<faults::CrashPoint> &plan,
            const std::string &scratch_base, unsigned jobs)
{
    std::vector<PointOutcome> outcomes(plan.size());
    exec::parallelFor(
        plan.size(),
        [&](size_t i) {
            outcomes[i] = runCrashPoint(
                g, plan[i], scratch_base + std::to_string(i));
        },
        jobs);

    std::string digest;
    for (const auto &o : outcomes) {
        digest += o.name + "=" +
            (o.exact ? "exact" : o.detected ? "detected" : "FAIL") +
            (o.silent_fn ? ",silent_fn" : "") +
            (o.false_positive ? ",fp" : "") + "\n";
        EXPECT_TRUE(o.exact || o.detected)
            << o.name << ": " << o.why;
        EXPECT_FALSE(o.silent_fn) << o.name;
        EXPECT_FALSE(o.false_positive) << o.name;
    }
    return digest;
}

} // anonymous namespace

TEST(CrashDifferential, DroidbenchAppsEveryPointExactOrDetected)
{
    // A leaky app and a benign app, tiny storage (heavy spill), plus
    // a mid-run snapshot cadence so both artifacts exist and the WAL
    // holds a real tail.
    const auto &apps = droidbench::droidBenchApps();
    ASSERT_GE(apps.size(), 2u);
    struct Pick
    {
        size_t app;
        core::EvictPolicy policy;
    };
    const std::vector<Pick> picks = {
        {0, core::EvictPolicy::LruSpill},
        {1, core::EvictPolicy::LruDrop},
    };

    for (size_t k = 0; k < picks.size(); ++k) {
        const auto &entry = apps[picks[k].app];
        auto run = droidbench::runApp(entry);
        core::TaintStorageParams sp;
        sp.entries = 8;
        sp.policy = picks[k].policy;

        std::string base = ::testing::TempDir() + "/pift_crashdiff_" +
            std::to_string(k);
        GoldenRun g = makeGolden(extendTrace(run.trace, 40), sp,
                                 base + "_golden", 25);
        ASSERT_GT(g.wal_bytes, 0u) << entry.name;
        ASSERT_GT(g.snapshot_bytes, 0u) << entry.name;

        auto plan = faults::planCrashPoints(
            g.wal_bytes, g.snapshot_bytes, 0xc0ffee + k, 32);
        sweepDigest(g, plan, base + "_pt", 0);
    }
}

TEST(CrashDifferential, DeterministicAcrossJobsWidths)
{
    const auto &apps = droidbench::droidBenchApps();
    auto run = droidbench::runApp(apps[0]);
    core::TaintStorageParams sp;
    sp.entries = 8;
    sp.policy = core::EvictPolicy::LruSpill;

    std::string base = ::testing::TempDir() + "/pift_crashjobs";
    GoldenRun g = makeGolden(extendTrace(run.trace, 40), sp,
                             base + "_golden", 25);
    ASSERT_GT(g.snapshot_bytes, 0u);
    auto plan = faults::planCrashPoints(g.wal_bytes, g.snapshot_bytes,
                                        1234, 24);

    std::string serial = sweepDigest(g, plan, base + "_s", 1);
    std::string wide = sweepDigest(g, plan, base + "_w", 4);
    EXPECT_EQ(serial, wide);
    EXPECT_NE(serial.find("exact"), std::string::npos);
    EXPECT_NE(serial.find("detected"), std::string::npos);
}

TEST(CrashDifferential, PlanIsDeterministicAndCoversEdges)
{
    auto a = faults::planCrashPoints(1000, 500, 42, 64);
    auto b = faults::planCrashPoints(1000, 500, 42, 64);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].mode, b[i].mode);
        EXPECT_EQ(a[i].offset, b[i].offset);
        EXPECT_EQ(a[i].bit, b[i].bit);
    }
    // Structural edges are always present.
    EXPECT_EQ(a[0].offset, 0u);
    EXPECT_EQ(a[0].target, faults::CrashTarget::Wal);
    bool header_cut = false, snap_point = false;
    for (const auto &p : a) {
        if (p.target == faults::CrashTarget::Wal &&
            p.mode == faults::CrashMode::Truncate &&
            p.offset == persist::wal_header_bytes)
            header_cut = true;
        if (p.target == faults::CrashTarget::Snapshot)
            snap_point = true;
    }
    EXPECT_TRUE(header_cut);
    EXPECT_TRUE(snap_point);

    // Different seed, different tail.
    auto c = faults::planCrashPoints(1000, 500, 43, 64);
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs |= a[i].offset != c[i].offset;
    EXPECT_TRUE(differs);
}

TEST(FaultSeeds, DerivationIsPinned)
{
    // Golden values for the sweep's per-(point, app) seed derivation.
    // These are part of the reproducibility contract (recorded fault
    // patterns depend on them); a change here is a breaking change to
    // every recorded sweep expectation and must never happen
    // silently.
    EXPECT_EQ(analysis::deriveFaultSeed(0, 0, 0),
              0xa706dd2f4d197e6full);
    EXPECT_EQ(analysis::deriveFaultSeed(1, 0, 0),
              0x5e41ab087439611eull);
    EXPECT_EQ(analysis::deriveFaultSeed(1, 0, 1),
              0xf18d6ce93d6cf1eeull);
    EXPECT_EQ(analysis::deriveFaultSeed(1, 1, 0),
              0x778b1aa9c29bc868ull);
    EXPECT_EQ(analysis::deriveFaultSeed(0xdeadbeef, 7, 11),
              0x46f221dbccfad8e2ull);

    // Distinctness across the small index grid the sweeps use.
    std::vector<uint64_t> seen;
    for (uint64_t pi = 0; pi < 8; ++pi)
        for (uint64_t ai = 0; ai < 8; ++ai)
            seen.push_back(analysis::deriveFaultSeed(1, pi, ai));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}
