/**
 * @file
 * Suite-registry invariants: unique names, sane categories, every
 * app declarable into a fresh context without execution, and the
 * helper emitters' basic behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "droidbench/app.hh"
#include "droidbench/helpers.hh"

using namespace pift;

TEST(Registry, NamesAreUniqueAcrossSuiteAndMalware)
{
    std::set<std::string> names;
    for (const auto &entry : droidbench::droidBenchApps())
        EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
    for (const auto &entry : droidbench::malwareApps())
        EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
}

TEST(Registry, CategoriesCoverThePaperChallenges)
{
    // Section 5: "moves data through arrays, lists, callbacks,
    // exceptions, intents, and obfuscates control flow through method
    // overriding, reflection, and object inheritance."
    std::set<std::string> cats;
    for (const auto &entry : droidbench::droidBenchApps())
        cats.insert(entry.category);
    for (const char *want :
         {"Direct", "ArraysAndLists", "Callbacks", "GeneralJava",
          "ICC", "Reflection", "FieldSensitivity", "Aliasing",
          "Strings", "Obfuscation", "AndroidSpecific",
          "ImplicitFlows", "Benign"}) {
        EXPECT_TRUE(cats.count(want)) << want;
    }
}

TEST(Registry, EveryAppDeclaresWithoutRunning)
{
    for (const auto &entry : droidbench::droidBenchApps()) {
        droidbench::AppContext ctx;
        dalvik::MethodId main_id = entry.declare(ctx);
        const auto &m = ctx.dex.method(main_id);
        EXPECT_FALSE(m.is_native) << entry.name;
        EXPECT_EQ(m.nins, 0) << entry.name;
        EXPECT_FALSE(m.code.empty()) << entry.name;
    }
}

TEST(Registry, BenignAppsAreExactlyTheBenignCategory)
{
    for (const auto &entry : droidbench::droidBenchApps()) {
        EXPECT_EQ(entry.category == "Benign", !entry.leaks)
            << entry.name;
    }
}

TEST(Helpers, CooldownExecutesManyInstructions)
{
    droidbench::AppContext ctx;
    dalvik::MethodBuilder b("cool.main", droidbench::app_nregs, 0);
    droidbench::emitCooldown(b, 25, "cd");
    b.returnVoid();
    auto id = ctx.dex.addMethod(b.finish());
    ctx.vm.boot();
    ctx.vm.execute(id);
    // Each iteration is several bytecodes of several instructions:
    // comfortably beyond any tainting window in the sweep grid.
    EXPECT_GT(ctx.cpu.retired(), 25u * 8);
}

TEST(Helpers, ConstAndConcatProduceExpectedText)
{
    droidbench::AppContext ctx;
    dalvik::MethodBuilder b("cc.main", droidbench::app_nregs, 0);
    droidbench::emitConst(ctx, b, 4, "left-");
    droidbench::emitConst(ctx, b, 5, "right");
    droidbench::emitConcat(ctx, b, 6, 4, 5);
    droidbench::emitLog(ctx, b, 6);
    b.returnVoid();
    auto id = ctx.dex.addMethod(b.finish());
    ctx.vm.boot();
    ctx.vm.execute(id);
    ASSERT_EQ(ctx.env.sinkCalls().size(), 1u);
    EXPECT_EQ(ctx.env.sinkCalls()[0].payload, "left-right");
}

TEST(Helpers, AllThreeSinkEmittersReachTheirSinks)
{
    droidbench::AppContext ctx;
    dalvik::MethodBuilder b("sinks.main", droidbench::app_nregs, 0);
    droidbench::emitConst(ctx, b, 4, "m");
    droidbench::emitSms(ctx, b, 4);
    droidbench::emitHttp(ctx, b, 4);
    droidbench::emitLog(ctx, b, 4);
    b.returnVoid();
    auto id = ctx.dex.addMethod(b.finish());
    ctx.vm.boot();
    ctx.vm.execute(id);
    ASSERT_EQ(ctx.env.sinkCalls().size(), 3u);
    EXPECT_EQ(ctx.env.sinkCalls()[0].type, android::SinkType::Sms);
    EXPECT_EQ(ctx.env.sinkCalls()[1].type, android::SinkType::Http);
    EXPECT_EQ(ctx.env.sinkCalls()[2].type, android::SinkType::Log);
}
