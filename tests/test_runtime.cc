/**
 * @file
 * Tests for the runtime: heap object model, the native routines
 * (including the Figure 1 string-copy loop's exact trace shape), and
 * the Java library methods.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "dalvik/vm.hh"
#include "isa/disasm.hh"
#include "runtime/heap.hh"
#include "runtime/library.hh"
#include "runtime/routines.hh"
#include "sim/cpu.hh"

using namespace pift;
using runtime::Heap;
using runtime::JavaLib;
using runtime::Ref;

namespace
{

struct Device
{
    Device() : cpu(memory, hub), heap(memory)
    {
        hub.addSink(&buffer);
        lib.install(dex);
    }

    void
    boot()
    {
        vm.emplace(cpu, dex, heap);
        vm->boot();
    }

    mem::Memory memory;
    sim::EventHub hub;
    sim::TraceBuffer buffer;
    sim::Cpu cpu;
    Heap heap;
    dalvik::Dex dex;
    JavaLib lib;
    std::optional<dalvik::Vm> vm;
};

} // namespace

TEST(HeapTest, ObjectLayout)
{
    mem::Memory memory;
    Heap heap(memory);
    Ref obj = heap.allocObject(7, 3);
    EXPECT_EQ(heap.classOf(obj), 7u);
    EXPECT_EQ(heap.length(obj), 3u);
    EXPECT_EQ(heap.fieldAddr(obj, 0), obj + 8);
    EXPECT_EQ(heap.fieldAddr(obj, 2), obj + 16);
    EXPECT_EQ(memory.read32(heap.fieldAddr(obj, 1)), 0u);
}

TEST(HeapTest, StringLayoutTwoBytesPerChar)
{
    mem::Memory memory;
    Heap heap(memory);
    Ref s = heap.allocString(2, "IMEI");
    EXPECT_EQ(heap.length(s), 4u);
    EXPECT_EQ(heap.readString(s), "IMEI");
    // Paper footnote 1: each character consumes two bytes.
    taint::AddrRange r = heap.charRange(s);
    EXPECT_EQ(r.bytes(), 8u);
    EXPECT_EQ(r.start, heap.dataAddr(s));
    EXPECT_EQ(heap.charAddr(s, 2), heap.dataAddr(s) + 4);
}

TEST(HeapTest, EmptyStringHasEmptyRange)
{
    mem::Memory memory;
    Heap heap(memory);
    Ref s = heap.allocString(2, "");
    EXPECT_FALSE(heap.charRange(s).valid());
}

TEST(HeapTest, ArraysZeroInitialized)
{
    mem::Memory memory;
    Heap heap(memory);
    // Dirty the memory first; allocation must clear it.
    memory.write32(mem::heap_base + 0x10, 0xffffffff);
    Heap heap2(memory);
    Ref arr = heap2.allocArray(3, 8, 4);
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(memory.read32(heap2.dataAddr(arr) + 4 * i), 0u);
}

TEST(Routines, AllEmittedInNativeRegion)
{
    runtime::Routines r = runtime::emitRoutines();
    for (const auto *p : r.all()) {
        EXPECT_GE(p->base, mem::native_base);
        EXPECT_LT(p->end(), mem::native_limit);
    }
}

TEST(Routines, Figure1CopyLoopShape)
{
    // Each character is loaded into a register and then stored to its
    // destination (Figure 1): the loop body is ldrh / strh.
    runtime::Routines r = runtime::emitRoutines();
    const auto &insts = r.string_copy.insts;
    ASSERT_GE(insts.size(), 4u);
    EXPECT_EQ(isa::disassemble(insts[0]), "ldrh r6, [r1], #2");
    EXPECT_EQ(isa::disassemble(insts[1]), "strh r6, [r0], #2");
    EXPECT_EQ(insts[2].op, isa::Op::Sub);
    EXPECT_EQ(insts[3].op, isa::Op::B);
}

TEST(Routines, CharFromWordDistanceIsTen)
{
    // The GPS threshold of Figure 11 comes from this routine.
    runtime::Routines r = runtime::emitRoutines();
    const auto &insts = r.char_from_word.insts;
    size_t load = 999, store = 999;
    for (size_t i = 0; i < insts.size(); ++i) {
        if (isa::isLoad(insts[i].op) && load == 999)
            load = i;
        if (isa::isStore(insts[i].op))
            store = i;
    }
    EXPECT_EQ(store - load, 10u);
}

TEST(Routines, StringCopyMovesCharsOnCpu)
{
    Device d;
    d.boot();
    Ref src = d.heap.allocString(d.dex.stringClass(), "hello world");
    Ref dst = d.heap.allocStringRaw(d.dex.stringClass(), 11);
    d.vm->runStringCopy(d.heap.dataAddr(dst), d.heap.dataAddr(src),
                        11);
    EXPECT_EQ(d.heap.readString(dst), "hello world");
    // And the trace shows the per-char loads and stores.
    uint64_t ldrh = 0, strh = 0;
    for (const auto &rec : d.buffer.trace().records) {
        ldrh += rec.op == isa::Op::Ldrh &&
            rec.mem_kind == sim::MemKind::Load;
        strh += rec.op == isa::Op::Strh;
    }
    EXPECT_GE(ldrh, 11u);
    EXPECT_GE(strh, 11u);
}

TEST(Routines, WordCopyMovesWordsOnCpu)
{
    Device d;
    d.boot();
    for (int i = 0; i < 4; ++i)
        d.memory.write32(0x4100'0000 + 4 * i, 100 + i);
    d.vm->runWordCopy(0x4200'0000, 0x4100'0000, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(d.memory.read32(0x4200'0000 + 4 * i),
                  100u + static_cast<uint32_t>(i));
}



TEST(JavaLibTest, StringLengthAndCharAt)
{
    Device d;
    Ref s = 0;
    {
        // Strings must exist before boot only if interned; build one
        // after boot via the heap directly.
        dalvik::MethodBuilder b("len_driver", 14, 2);
        b.moveObject(4, 12);
        b.move(5, 13);
        b.invokeStatic(d.lib.string_char_at, 2, 4);
        b.moveResult(0);
        b.moveObject(4, 12);
        b.invokeStatic(d.lib.string_length, 1, 4);
        b.moveResult(1);
        b.binop(dalvik::Bc::MulInt, 2, 0, 1);
        b.returnValue(2);
        auto id = d.dex.addMethod(b.finish());
        d.boot();
        s = d.vm->newString("abcdef");
        EXPECT_EQ(d.vm->execute(id, {s, 2}), 6u * 'c');
    }
}

TEST(JavaLibTest, EqualsAndIndexOf)
{
    Device d;
    dalvik::MethodBuilder b("eq_driver", 14, 2);
    b.moveObject(4, 12);
    b.moveObject(5, 13);
    b.invokeStatic(d.lib.string_equals, 2, 4);
    b.moveResult(0);
    b.returnValue(0);
    auto eq = d.dex.addMethod(b.finish());

    dalvik::MethodBuilder b2("idx_driver", 14, 2);
    b2.moveObject(4, 12);
    b2.move(5, 13);
    b2.invokeStatic(d.lib.string_index_of, 2, 4);
    b2.moveResult(0);
    b2.returnValue(0);
    auto idx = d.dex.addMethod(b2.finish());

    d.boot();
    Ref a = d.vm->newString("droidbench");
    Ref b_same = d.vm->newString("droidbench");
    Ref c = d.vm->newString("droidbanch");
    Ref shorter = d.vm->newString("droid");
    EXPECT_EQ(d.vm->execute(eq, {a, b_same}), 1u);
    EXPECT_EQ(d.vm->execute(eq, {a, c}), 0u);
    EXPECT_EQ(d.vm->execute(eq, {a, shorter}), 0u);
    EXPECT_EQ(d.vm->execute(idx, {a, 'b'}), 5u);
    EXPECT_EQ(d.vm->execute(idx, {a, 'z'}),
              static_cast<uint32_t>(-1));
}

TEST(JavaLibTest, ConcatAndSubstring)
{
    Device d;
    dalvik::MethodBuilder b("cc_driver", 14, 2);
    b.moveObject(4, 12);
    b.moveObject(5, 13);
    b.invokeStatic(d.lib.string_concat, 2, 4);
    b.moveResultObject(0);
    b.moveObject(4, 0);
    b.const4(5, 3);
    b.const4(6, 7);
    b.invokeStatic(d.lib.string_substring, 3, 4);
    b.moveResultObject(0);
    b.returnObject(0);
    auto id = d.dex.addMethod(b.finish());
    d.boot();
    Ref a = d.vm->newString("type");
    Ref bq = d.vm->newString("=sms");
    Ref out = d.vm->execute(id, {a, bq});
    EXPECT_EQ(d.vm->readString(out), "e=sm");
}

TEST(JavaLibTest, StringBuilderAppendGrowToString)
{
    Device d;
    dalvik::MethodBuilder b("sb_driver", 14, 1);
    b.invokeStatic(d.lib.sb_init, 0, 0);
    b.moveResultObject(1);
    b.const4(2, 0);
    b.label("loop");
    b.const4(3, 7);
    b.ifGe(2, 3, "done");
    b.moveObject(4, 1);
    b.moveObject(5, 13);
    b.invokeStatic(d.lib.sb_append, 2, 4);
    b.addIntLit8(2, 2, 1);
    b.gotoLabel("loop");
    b.label("done");
    b.moveObject(4, 1);
    b.invokeStatic(d.lib.sb_to_string, 1, 4);
    b.moveResultObject(0);
    b.returnObject(0);
    auto id = d.dex.addMethod(b.finish());
    d.boot();
    Ref chunk = d.vm->newString("0123456789"); // 7*10 chars > 64 cap
    Ref out = d.vm->execute(id, {chunk});
    std::string expect;
    for (int i = 0; i < 7; ++i)
        expect += "0123456789";
    EXPECT_EQ(d.vm->readString(out), expect);
}

TEST(JavaLibTest, IntegerConversions)
{
    Device d;
    dalvik::MethodBuilder b("i2s_driver", 14, 1);
    b.move(4, 13);
    b.invokeStatic(d.lib.int_to_string, 1, 4);
    b.moveResultObject(0);
    b.moveObject(4, 0);
    b.invokeStatic(d.lib.int_parse, 1, 4);
    b.moveResult(0);
    b.returnValue(0);
    auto id = d.dex.addMethod(b.finish());
    d.boot();
    // toString then parseInt must round-trip.
    EXPECT_EQ(d.vm->execute(id, {98765}), 98765u);
    EXPECT_EQ(d.vm->execute(id, {static_cast<uint32_t>(-321)}),
              static_cast<uint32_t>(-321));
    EXPECT_EQ(d.vm->execute(id, {0}), 0u);
}

TEST(JavaLibTest, FloatToStringContent)
{
    Device d;
    dalvik::MethodBuilder b("f2s_driver", 14, 1);
    b.move(4, 13);
    b.invokeStatic(d.lib.float_to_string, 1, 4);
    b.moveResultObject(0);
    b.returnObject(0);
    auto id = d.dex.addMethod(b.finish());
    d.boot();
    float f = 37.4220f;
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    Ref out = d.vm->execute(id, {bits});
    EXPECT_EQ(d.vm->readString(out), "37.4220");
}

TEST(JavaLibTest, MathHelpers)
{
    Device d;
    auto driver1 = [&](dalvik::MethodId target, const char *name) {
        dalvik::MethodBuilder b(name, 14, 1);
        b.move(4, 13);
        b.invokeStatic(target, 1, 4);
        b.moveResult(0);
        b.returnValue(0);
        return d.dex.addMethod(b.finish());
    };
    auto driver2 = [&](dalvik::MethodId target, const char *name) {
        dalvik::MethodBuilder b(name, 14, 2);
        b.move(4, 12);
        b.move(5, 13);
        b.invokeStatic(target, 2, 4);
        b.moveResult(0);
        b.returnValue(0);
        return d.dex.addMethod(b.finish());
    };
    auto abs_id = driver1(d.lib.math_abs, "abs_d");
    auto bits_id = driver1(d.lib.int_bit_count, "bits_d");
    auto max_id = driver2(d.lib.math_max, "max_d");
    auto min_id = driver2(d.lib.math_min, "min_d");
    d.boot();
    EXPECT_EQ(d.vm->execute(abs_id, {static_cast<uint32_t>(-9)}), 9u);
    EXPECT_EQ(d.vm->execute(abs_id, {9}), 9u);
    EXPECT_EQ(d.vm->execute(max_id, {3, 11}), 11u);
    EXPECT_EQ(d.vm->execute(min_id, {3, 11}), 3u);
    EXPECT_EQ(d.vm->execute(bits_id, {0x2a}), 3u);
}

TEST(JavaLibTest, HashCodeMatchesJavaAlgorithm)
{
    Device d;
    dalvik::MethodBuilder b("hash_driver", 14, 1);
    b.moveObject(4, 13);
    b.invokeStatic(d.lib.string_hash_code, 1, 4);
    b.moveResult(0);
    b.returnValue(0);
    auto id = d.dex.addMethod(b.finish());
    d.boot();
    Ref s = d.vm->newString("abc");
    // h = ('a'*31 + 'b')*31 + 'c'
    uint32_t expect = ('a' * 31 + 'b') * 31 + 'c';
    EXPECT_EQ(d.vm->execute(id, {s}), expect);
}
