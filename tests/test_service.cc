/**
 * @file
 * Tests for the multi-tenant tracking service (DESIGN.md §14):
 * session lifecycle, the service-vs-serial verdict differential,
 * backpressure degradation (never a silent drop), byte-ceiling
 * eviction and idle expiry (tombstones force MaybeTainted on
 * re-admission), per-session durability, and a ThreadSanitizer-
 * targeted stress of concurrent attach/ingest/detach/expire on a
 * shared PID set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "analysis/evaluate.hh"
#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "droidbench/app.hh"
#include "exec/thread_pool.hh"
#include "persist/wire.hh"
#include "provenance/explain.hh"
#include "provenance/recorder.hh"
#include "service/service.hh"
#include "sim/trace.hh"

using namespace pift;
using service::EventKind;
using service::ServiceEvent;

namespace
{

ServiceEvent
memEv(ProcId pid, EventKind kind, Addr start, Addr end, SeqNum lseq)
{
    ServiceEvent ev;
    ev.pid = pid;
    ev.kind = kind;
    ev.start = start;
    ev.end = end;
    ev.local_seq = lseq;
    return ev;
}

ServiceEvent
ctlEv(ProcId pid, EventKind kind, Addr start, Addr end, uint32_t id)
{
    ServiceEvent ev;
    ev.pid = pid;
    ev.kind = kind;
    ev.start = start;
    ev.end = end;
    ev.id = id;
    return ev;
}

/**
 * A small leaky workload for @p pid in its own address neighbourhood:
 * source [base, base+63], a load from it and a store propagating the
 * taint to base+4096 within the default window.
 */
std::vector<ServiceEvent>
leakyWorkload(ProcId pid)
{
    Addr base = 0x10000u + pid * 0x10000u;
    std::vector<ServiceEvent> evs;
    evs.push_back(ctlEv(pid, EventKind::Source, base, base + 63, 1));
    evs.push_back(memEv(pid, EventKind::Load, base, base + 3, 1));
    evs.push_back(memEv(pid, EventKind::Store, base + 4096,
                        base + 4099, 2));
    return evs;
}

} // namespace

TEST(ServiceLifecycle, AttachSubmitPumpDetach)
{
    service::ServiceConfig cfg;
    cfg.shards = 4;
    service::TrackingService svc(cfg);

    EXPECT_TRUE(svc.attach(7));
    EXPECT_FALSE(svc.attach(7)) << "double attach";
    EXPECT_EQ(svc.pidState(7), service::PidState::Active);
    EXPECT_EQ(svc.pidState(8), service::PidState::Unknown);

    for (const auto &ev : leakyWorkload(7))
        EXPECT_TRUE(svc.submit(ev));
    svc.pump();

    // The propagated store is tainted at the sink; an unrelated
    // range is Clean (no degradation anywhere).
    Addr base = 0x10000u + 7 * 0x10000u;
    EXPECT_EQ(svc.checkSinkNow(7, base + 4096, base + 4099, 9),
              core::SinkVerdict::Tainted);
    EXPECT_EQ(svc.checkSinkNow(7, base + 9000, base + 9003, 10),
              core::SinkVerdict::Clean);

    auto sinks = svc.sinkResultsFor(7);
    ASSERT_EQ(sinks.size(), 2u);
    EXPECT_EQ(sinks[0].sink_id, 9u);
    EXPECT_TRUE(sinks[0].tainted);

    auto infos = svc.sessions();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].pid, 7u);
    EXPECT_GT(infos[0].storage_bytes, 0u);

    EXPECT_TRUE(svc.detach(7));
    EXPECT_FALSE(svc.detach(7));
    // Detach is clean (process exit): the pid is Unknown, not Shed.
    EXPECT_EQ(svc.pidState(7), service::PidState::Unknown);

    auto st = svc.stats();
    EXPECT_EQ(st.overflowed, 0u);
    EXPECT_EQ(st.accepted, st.drained);
    EXPECT_EQ(st.detached, 1u);
}

TEST(ServiceLifecycle, LazyAttachOnSubmit)
{
    service::TrackingService svc;
    EXPECT_TRUE(svc.submit(
        ctlEv(42, EventKind::Source, 0x100, 0x13f, 1)));
    svc.pump();
    EXPECT_EQ(svc.pidState(42), service::PidState::Active);
    EXPECT_EQ(svc.checkSinkNow(42, 0x100, 0x103, 2),
              core::SinkVerdict::Tainted);
}

TEST(ServiceDifferential, MatchesSerialReplayOnRegistryApps)
{
    // The core correctness claim: multiplexing an app through the
    // service (re-pidded, memory events + controls only) yields the
    // same (sink_id, tainted, verdict) sequence as a dedicated
    // serial replay of the captured trace.
    service::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.queue_capacity = 1u << 16;
    service::TrackingService svc(cfg);

    const auto &apps = droidbench::droidBenchApps();
    size_t tested = 0;
    for (size_t i = 0; i < apps.size() && tested < 12; ++i, ++tested) {
        auto run = droidbench::runApp(apps[i]);
        ProcId pid = static_cast<ProcId>(1000 + i);
        auto evs = service::eventsFromTrace(run.trace, pid);
        // Chunked at half the queue bound and pumped between chunks:
        // a well-paced producer never overflows, so this is the
        // zero-fault differential.
        const size_t chunk = cfg.queue_capacity / 2;
        for (size_t off = 0; off < evs.size(); off += chunk) {
            size_t n = std::min(chunk, evs.size() - off);
            ASSERT_EQ(svc.submitMany(evs.data() + off, n), n);
            svc.pump();
        }

        core::TaintStorage store(cfg.session.storage);
        core::PiftTracker ref(cfg.session.params, store);
        sim::replay(run.trace, ref);

        auto got = svc.sinkResultsFor(pid);
        const auto &want = ref.sinkResults();
        ASSERT_EQ(got.size(), want.size()) << apps[i].name;
        for (size_t k = 0; k < want.size(); ++k) {
            EXPECT_EQ(got[k].sink_id, want[k].sink_id)
                << apps[i].name;
            EXPECT_EQ(got[k].tainted, want[k].tainted)
                << apps[i].name << " sink " << k;
            EXPECT_EQ(got[k].verdict, want[k].verdict)
                << apps[i].name << " sink " << k;
        }
    }
    EXPECT_GE(tested, 8u);
    EXPECT_EQ(svc.stats().overflowed, 0u);
}

TEST(ServiceBackpressure, OverflowDegradesToMaybeTaintedNeverSilent)
{
    service::ServiceConfig cfg;
    cfg.shards = 1;
    cfg.queue_capacity = 4; // tiny: force overflow
    cfg.session.provenance = true;
    service::TrackingService svc(cfg);

    // Fill the queue past capacity without draining.
    EXPECT_TRUE(svc.submit(
        ctlEv(5, EventKind::Source, 0x1000, 0x103f, 1)));
    size_t refused = 0;
    for (SeqNum i = 0; i < 16; ++i)
        if (!svc.submit(
                memEv(5, EventKind::Load, 0x1000, 0x1003, i + 1)))
            ++refused;
    EXPECT_GT(refused, 0u) << "queue should have overflowed";
    svc.pump();

    auto st = svc.stats();
    EXPECT_EQ(st.overflowed, refused);
    EXPECT_GT(st.loss_marks, 0u);

    // The pid lost events, so a negative check must answer
    // MaybeTainted — taint could have moved through the gap — while
    // a positive check stays Tainted (FP=0 semantics intact).
    EXPECT_EQ(svc.checkSinkNow(5, 0x9000, 0x9003, 7),
              core::SinkVerdict::MaybeTainted);
    EXPECT_EQ(svc.checkSinkNow(5, 0x1000, 0x1003, 8),
              core::SinkVerdict::Tainted);

    // An unaffected tenant in the same shard stays Clean.
    EXPECT_TRUE(svc.submit(
        ctlEv(6, EventKind::Source, 0x2000, 0x203f, 1)));
    svc.pump();
    EXPECT_EQ(svc.checkSinkNow(6, 0x8000, 0x8003, 9),
              core::SinkVerdict::Clean);

    // The degradation is attributable: the flight recorder holds a
    // StreamLoss record for the pid, so `pift_cli explain` can cite
    // the backpressure drop behind the MaybeTainted verdict.
    if (provenance::compiledIn()) {
        const provenance::Recorder *rec = svc.recorderFor(5);
        ASSERT_NE(rec, nullptr);
        bool saw_loss = false;
        for (const auto &r : rec->recordsFor(5))
            if (r.kind == provenance::ProvKind::StreamLoss)
                saw_loss = true;
        EXPECT_TRUE(saw_loss);

        auto expl = provenance::explainPid(*rec, 5);
        bool maybe_with_cause = false;
        for (const auto &e : expl)
            if (e.verdict == static_cast<uint8_t>(
                                 core::SinkVerdict::MaybeTainted) &&
                e.has_cause)
                maybe_with_cause = true;
        EXPECT_TRUE(maybe_with_cause);
    }
}

TEST(ServiceBackpressure, QueuedClearCannotEraseLaterLoss)
{
    // Ordering regression: a ClearAll accepted *before* an overflow
    // drains *after* the loss mark was applied to the tracker. The
    // drop postdates the clear, so the clear must not launder it —
    // the shard restores the mark when the Clear drains.
    service::ServiceConfig cfg;
    cfg.shards = 1;
    cfg.queue_capacity = 2;
    service::TrackingService svc(cfg);

    ASSERT_TRUE(svc.submit(
        ctlEv(5, EventKind::Source, 0x1000, 0x103f, 1)));
    ASSERT_TRUE(svc.submit(ctlEv(5, EventKind::Clear, 0, 0, 0)));
    // Queue full: this drop happens after the queued Clear.
    ASSERT_FALSE(svc.submit(
        memEv(5, EventKind::Load, 0x1000, 0x1003, 1)));
    svc.pump();

    // The dropped event could have moved taint in post-Clear state;
    // a negative check answering Clean would be a silent FN.
    EXPECT_EQ(svc.checkSinkNow(5, 0x9000, 0x9003, 7),
              core::SinkVerdict::MaybeTainted);
}

TEST(ServiceBackpressure, ClearAcceptedAfterLossRetiresIt)
{
    // The converse ordering: a Clear accepted *after* the overflow
    // wipes every byte the dropped event could have touched, so the
    // loss is moot and Clean answers are trustworthy again.
    service::ServiceConfig cfg;
    cfg.shards = 1;
    cfg.queue_capacity = 2;
    service::TrackingService svc(cfg);

    ASSERT_TRUE(svc.submit(
        memEv(5, EventKind::Load, 0x1000, 0x1003, 1)));
    ASSERT_TRUE(svc.submit(
        memEv(5, EventKind::Load, 0x1004, 0x1007, 2)));
    ASSERT_FALSE(svc.submit(
        memEv(5, EventKind::Load, 0x1008, 0x100b, 3)));
    svc.pump();
    EXPECT_EQ(svc.checkSinkNow(5, 0x9000, 0x9003, 7),
              core::SinkVerdict::MaybeTainted);

    ASSERT_TRUE(svc.submit(ctlEv(5, EventKind::Clear, 0, 0, 0)));
    svc.pump();
    EXPECT_EQ(svc.checkSinkNow(5, 0x9000, 0x9003, 8),
              core::SinkVerdict::Clean);
}

TEST(ServiceThreaded, NarrowPoolMultiplexesAllShards)
{
    // A pool narrower than the shard count must still serve every
    // shard: workers multiplex shards [i, i+n, ...] with timed
    // waits, so no queue is orphaned until shutdown.
    service::ServiceConfig cfg;
    cfg.shards = 4;
    service::TrackingService svc(cfg);

    exec::ThreadPool pool(2); // 2 participants < 4 shards
    std::thread workers([&] { svc.runWorkers(pool); });

    size_t expect = 0;
    for (ProcId pid = 1; pid <= 8; ++pid) {
        for (const auto &ev : leakyWorkload(pid)) {
            ASSERT_TRUE(svc.submit(ev));
            ++expect;
        }
    }
    // Workers (not this thread) must drain all four shards.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (svc.stats().drained < expect &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(svc.stats().drained, expect)
        << "unclaimed shards never drained";

    svc.stop();
    workers.join();

    for (ProcId pid = 1; pid <= 8; ++pid) {
        Addr base = 0x10000u + pid * 0x10000u;
        EXPECT_EQ(svc.checkSinkNow(pid, base + 4096, base + 4099,
                                   300 + pid),
                  core::SinkVerdict::Tainted);
    }
}

TEST(ServiceEviction, CeilingShedsLruAndForcesStateLossOnReturn)
{
    service::ServiceConfig cfg;
    cfg.shards = 2;
    cfg.memory_ceiling = 3 * 64; // three 64-byte sources fit, not 6
    service::TrackingService svc(cfg);

    // Six tenants, each holding 64 tainted bytes; pids ingest in
    // order, so pid 1 is the least recently active.
    for (ProcId pid = 1; pid <= 6; ++pid) {
        for (const auto &ev : leakyWorkload(pid))
            ASSERT_TRUE(svc.submit(ev));
        svc.pump();
    }
    auto before = svc.stats();
    EXPECT_GT(before.storage_bytes, cfg.memory_ceiling);

    svc.maintain();

    auto after = svc.stats();
    EXPECT_GT(after.evicted, 0u);
    EXPECT_LE(after.storage_bytes, cfg.memory_ceiling);

    // Least-recently-active pids were shed, most recent survived.
    EXPECT_EQ(svc.pidState(1), service::PidState::Shed);
    EXPECT_EQ(svc.pidState(6), service::PidState::Active);

    // An evicted tenant's sinks can never be silently Clean: the
    // re-admitted session declares state loss first.
    Addr base1 = 0x10000u + 1 * 0x10000u;
    EXPECT_EQ(svc.checkSinkNow(1, base1 + 4096, base1 + 4099, 50),
              core::SinkVerdict::MaybeTainted);
    // A surviving tenant still answers exactly.
    Addr base6 = 0x10000u + 6 * 0x10000u;
    EXPECT_EQ(svc.checkSinkNow(6, base6 + 4096, base6 + 4099, 51),
              core::SinkVerdict::Tainted);
    EXPECT_EQ(svc.checkSinkNow(6, base6 + 9000, base6 + 9003, 52),
              core::SinkVerdict::Clean);
}

TEST(ServiceEviction, PressureDifferentialFpZeroNoSilentFn)
{
    // Eviction under sustained pressure: every genuinely leaky pid
    // must report Tainted or MaybeTainted (no silent FN), and no
    // clean pid may report Tainted (FP=0) — whatever the eviction
    // policy sheds.
    service::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.memory_ceiling = 8 * 64;
    service::TrackingService svc(cfg);

    const ProcId npids = 32;
    for (ProcId pid = 1; pid <= npids; ++pid) {
        bool leaky = pid % 2 == 1;
        if (leaky) {
            for (const auto &ev : leakyWorkload(pid))
                ASSERT_TRUE(svc.submit(ev));
        } else {
            Addr base = 0x10000u + pid * 0x10000u;
            ASSERT_TRUE(svc.submit(
                memEv(pid, EventKind::Load, base, base + 3, 1)));
            ASSERT_TRUE(svc.submit(memEv(pid, EventKind::Store,
                                         base + 8, base + 11, 2)));
        }
        svc.pump();
        svc.maintain(); // keep the ceiling enforced while ingesting
    }
    ASSERT_GT(svc.stats().evicted, 0u)
        << "pressure must actually trigger eviction";

    for (ProcId pid = 1; pid <= npids; ++pid) {
        Addr base = 0x10000u + pid * 0x10000u;
        auto v = svc.checkSinkNow(pid, base + 4096, base + 4099,
                                  100 + pid);
        bool leaky = pid % 2 == 1;
        if (leaky)
            EXPECT_NE(v, core::SinkVerdict::Clean)
                << "silent FN for leaky pid " << pid;
        else
            EXPECT_NE(v, core::SinkVerdict::Tainted)
                << "FP for clean pid " << pid;
    }
}

TEST(ServiceExpiry, IdleSessionsExpireCleanOrTombstoned)
{
    service::ServiceConfig cfg;
    cfg.shards = 2;
    cfg.expire_idle_ticks = 8;
    service::TrackingService svc(cfg);

    // pid 1: holds taint. pid 2: touched memory but holds nothing.
    for (const auto &ev : leakyWorkload(1))
        ASSERT_TRUE(svc.submit(ev));
    ASSERT_TRUE(svc.submit(
        memEv(2, EventKind::Load, 0x500000, 0x500003, 1)));
    svc.pump();

    // Advance the logical clock well past the idle horizon with a
    // third tenant's traffic.
    for (SeqNum i = 0; i < 32; ++i)
        ASSERT_TRUE(svc.submit(
            memEv(3, EventKind::Load, 0x600000, 0x600003, i + 1)));
    svc.pump();
    svc.maintain();

    auto st = svc.stats();
    EXPECT_EQ(st.expired, 2u);
    // Taint-free and undegraded: a clean goodbye.
    EXPECT_EQ(svc.pidState(2), service::PidState::Unknown);
    // Held taint: expiring it loses state, so the pid is tombstoned
    // and must come back MaybeTainted.
    EXPECT_EQ(svc.pidState(1), service::PidState::Shed);
    EXPECT_EQ(svc.checkSinkNow(1, 0x900000, 0x900003, 60),
              core::SinkVerdict::MaybeTainted);
    EXPECT_EQ(svc.pidState(3), service::PidState::Active);
}

TEST(ServiceDurability, SessionsJournalIntoPerPidDirectories)
{
    std::string dir = ::testing::TempDir() + "/pift_service_durable";
    service::ServiceConfig cfg;
    cfg.shards = 2;
    cfg.session.durable_dir = dir;
    cfg.session.snapshot_every = 2;
    {
        service::TrackingService svc(cfg);
        for (const auto &ev : leakyWorkload(9))
            ASSERT_TRUE(svc.submit(ev));
        svc.pump();
        EXPECT_TRUE(svc.detach(9)); // closes the durable session
    }
    // The per-pid directory holds a recoverable snapshot/WAL pair:
    // the snapshot cadence fired (every 2 journal records) and the
    // WAL was flushed on close.
    std::string snap, wal;
    EXPECT_TRUE(persist::readFileBytes(
                    persist::snapshotPath(dir + "/pid_9"), snap)
                    .ok());
    EXPECT_FALSE(snap.empty());
    EXPECT_TRUE(
        persist::readFileBytes(persist::walPath(dir + "/pid_9"), wal)
            .ok());
}

TEST(ServiceStress, ConcurrentAttachIngestDetachExpire)
{
    // The TSan target: producers, lifecycle chaos, sink checks and
    // maintenance all race against the per-shard workers on one
    // shared PID set. Assertions are consistency properties that
    // hold under any interleaving.
    service::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.queue_capacity = 64; // small enough to exercise overflow
    cfg.expire_idle_ticks = 50000;
    cfg.memory_ceiling = 16 * 64;
    service::TrackingService svc(cfg);

    exec::ThreadPool pool(cfg.shards + 1);
    std::thread workers([&] { svc.runWorkers(pool); });

    const ProcId npids = 16;
    std::atomic<uint64_t> refused{0};
    auto producer = [&](unsigned seed) {
        for (unsigned round = 0; round < 200; ++round) {
            ProcId pid = 1 + (seed + round) % npids;
            for (const auto &ev : leakyWorkload(pid))
                if (!svc.submit(ev))
                    ++refused;
        }
    };
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < 4; ++p)
        producers.emplace_back(producer, p * 7);

    std::thread chaos([&] {
        for (unsigned round = 0; round < 100; ++round) {
            ProcId pid = 1 + round % npids;
            switch (round % 4) {
              case 0:
                svc.attach(pid);
                break;
              case 1:
                svc.detach(pid);
                break;
              case 2:
                svc.checkSinkNow(pid, 0x100, 0x103, 1000 + round);
                break;
              default:
                svc.maintain();
                break;
            }
        }
    });

    for (auto &t : producers)
        t.join();
    chaos.join();
    svc.stop();
    workers.join();
    svc.pump(); // drain anything the workers left at shutdown

    auto st = svc.stats();
    EXPECT_EQ(st.submitted, st.accepted + st.overflowed);
    EXPECT_EQ(st.accepted, st.drained);
    EXPECT_EQ(st.overflowed, refused.load());
    // Overflow is backpressure, not loss: every refusal left a
    // stream-loss mark on its pid.
    if (st.overflowed > 0)
        EXPECT_GT(st.loss_marks, 0u);

    // After the dust settles every pid still answers, and no pid
    // that lost events answers a bare Clean on its tainted range.
    for (ProcId pid = 1; pid <= npids; ++pid) {
        Addr base = 0x10000u + pid * 0x10000u;
        auto v = svc.checkSinkNow(pid, base + 4096, base + 4099,
                                  2000 + pid);
        (void)v; // any verdict is legal here; the call must be safe
    }
}

TEST(ServiceStress, PumpModeDeterministicAcrossJobs)
{
    // The same multiplexed workload pumped at different widths must
    // produce identical verdict streams per pid.
    auto runAt = [](unsigned jobs) {
        service::ServiceConfig cfg;
        cfg.shards = 8;
        service::TrackingService svc(cfg);
        for (ProcId pid = 1; pid <= 24; ++pid)
            for (const auto &ev : leakyWorkload(pid))
                EXPECT_TRUE(svc.submit(ev));
        svc.pump(jobs);
        std::vector<core::SinkVerdict> out;
        for (ProcId pid = 1; pid <= 24; ++pid) {
            Addr base = 0x10000u + pid * 0x10000u;
            out.push_back(svc.checkSinkNow(pid, base + 4096,
                                           base + 4099, 70));
            out.push_back(svc.checkSinkNow(pid, base + 9000,
                                           base + 9003, 71));
        }
        return out;
    };
    auto serial = runAt(1);
    auto wide = runAt(4);
    EXPECT_EQ(serial, wide);
}
