/**
 * @file
 * Decoder and CFG builder: operand normalisation per format family,
 * branch edges for every branch encoding (F10t goto, F21t one-reg
 * ifs, F22t two-reg ifs), fall-through edges, loops, reachability,
 * and the forward dataflow fixpoint on a diamond.
 */

#include <gtest/gtest.h>

#include "dalvik/method.hh"
#include "static/cfg.hh"
#include "static/dataflow.hh"
#include "static/decode.hh"

using namespace pift;
using namespace pift::static_analysis;
using dalvik::Bc;
using dalvik::MethodBuilder;

namespace
{

dalvik::Method
build(MethodBuilder &&b)
{
    return std::move(b).finish();
}

} // namespace

TEST(StaticDecode, OperandFamilies)
{
    auto m = build(std::move(
        MethodBuilder("decode_families", 6, 0)
            .const4(0, 7)            // F11n
            .const16(1, 300)         // F21s
            .move(2, 0)              // F12x
            .moveFrom16(3, 1)        // F22x
            .binop(Bc::AddInt, 4, 2, 3) // F23x
            .addIntLit8(5, 4, -3)    // F22b
            .returnVoid()));         // F10x

    DecodeError err = DecodeError::None;
    auto insts = decodeAll(m.code, &err);
    ASSERT_EQ(err, DecodeError::None);
    ASSERT_EQ(insts.size(), 7u);

    EXPECT_EQ(insts[0].bc, Bc::Const4);
    EXPECT_EQ(insts[0].literal, 7);
    EXPECT_EQ(insts[0].defs, std::vector<uint16_t>{0});
    EXPECT_TRUE(insts[0].uses.empty());

    EXPECT_EQ(insts[1].bc, Bc::Const16);
    EXPECT_EQ(insts[1].literal, 300);
    EXPECT_EQ(insts[1].units, 2u);

    EXPECT_EQ(insts[2].uses, std::vector<uint16_t>{0});
    EXPECT_EQ(insts[2].defs, std::vector<uint16_t>{2});

    EXPECT_EQ(insts[4].bc, Bc::AddInt);
    EXPECT_EQ(insts[4].uses, (std::vector<uint16_t>{2, 3}));
    EXPECT_EQ(insts[4].defs, std::vector<uint16_t>{4});

    EXPECT_EQ(insts[5].bc, Bc::AddIntLit8);
    EXPECT_EQ(insts[5].literal, -3);
    EXPECT_EQ(insts[5].uses, std::vector<uint16_t>{4});

    EXPECT_EQ(insts[6].bc, Bc::ReturnVoid);
    EXPECT_FALSE(insts[6].fallsThrough());
}

TEST(StaticDecode, NegativeConst4SignExtends)
{
    auto m = build(std::move(MethodBuilder("decode_neg", 1, 0)
                                 .const4(0, -1)
                                 .returnVoid()));
    auto insts = decodeAll(m.code);
    ASSERT_EQ(insts.size(), 2u);
    EXPECT_EQ(insts[0].literal, -1);
}

TEST(StaticDecode, WideAndInvokeExpansion)
{
    auto m = build(std::move(
        MethodBuilder("decode_wide", 8, 0)
            .moveWide(2, 0)           // pairs (2,3) <- (0,1)
            .addLong(4, 0, 2)         // (4,5) <- (0,1)+(2,3)
            .invokeStatic(0, 3, 4)    // args v4..v6
            .returnVoid()));
    auto insts = decodeAll(m.code);
    ASSERT_EQ(insts.size(), 4u);

    EXPECT_EQ(insts[0].uses, (std::vector<uint16_t>{0, 1}));
    EXPECT_EQ(insts[0].defs, (std::vector<uint16_t>{2, 3}));

    EXPECT_EQ(insts[1].uses, (std::vector<uint16_t>{0, 1, 2, 3}));
    EXPECT_EQ(insts[1].defs, (std::vector<uint16_t>{4, 5}));

    EXPECT_EQ(insts[2].bc, Bc::InvokeStatic);
    EXPECT_EQ(insts[2].uses, (std::vector<uint16_t>{4, 5, 6}));
    EXPECT_EQ(insts[2].argc, 3u);
    EXPECT_EQ(insts[2].first_arg, 4u);
}

TEST(StaticDecode, BadOpcodeReported)
{
    std::vector<uint16_t> code{0x00ff}; // opcode 0xff
    DecodeError err = DecodeError::None;
    size_t unit = 0;
    decodeAll(code, &err, &unit);
    EXPECT_EQ(err, DecodeError::BadOpcode);
    EXPECT_EQ(unit, 0u);
}

TEST(StaticDecode, TruncatedReported)
{
    // if-eqz is F21t (two units); give it one.
    std::vector<uint16_t> code{
        static_cast<uint16_t>(static_cast<unsigned>(Bc::IfEqz))};
    DecodeError err = DecodeError::None;
    size_t unit = 5;
    decodeAll(code, &err, &unit);
    EXPECT_EQ(err, DecodeError::Truncated);
    EXPECT_EQ(unit, 0u);
}

TEST(StaticCfg, GotoF10t)
{
    // entry -> goto over a skipped const -> exit
    auto m = build(std::move(MethodBuilder("cfg_goto", 2, 0)
                                 .const4(0, 1)
                                 .gotoLabel("done")
                                 .const4(1, 2) // skipped
                                 .label("done")
                                 .returnVoid()));
    Cfg cfg = buildCfg(m);
    ASSERT_EQ(cfg.blocks.size(), 3u);

    const BasicBlock &entry = cfg.blocks[cfg.entry_block];
    EXPECT_EQ(cfg.lastInst(entry).bc, Bc::Goto);
    ASSERT_EQ(entry.succs.size(), 1u); // no fall-through from goto

    const BasicBlock &target = cfg.blocks[entry.succs[0]];
    EXPECT_EQ(cfg.inst(target, 0).bc, Bc::ReturnVoid);
    EXPECT_TRUE(target.reachable);

    // The skipped const is its own, unreachable block.
    const BasicBlock &skipped = cfg.blocks[1];
    EXPECT_EQ(cfg.inst(skipped, 0).bc, Bc::Const4);
    EXPECT_FALSE(skipped.reachable);
}

TEST(StaticCfg, CondBranchF21tHasBothEdges)
{
    auto m = build(std::move(MethodBuilder("cfg_f21t", 2, 1)
                                 .ifEqz(1, "zero")
                                 .const4(0, 1)
                                 .returnValue(0)
                                 .label("zero")
                                 .const4(0, 0)
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    const BasicBlock &entry = cfg.blocks[cfg.entry_block];
    EXPECT_EQ(entry.count, 1u);
    ASSERT_EQ(entry.succs.size(), 2u); // taken + fall-through
    for (const BasicBlock &bb : cfg.blocks)
        EXPECT_TRUE(bb.reachable);
}

TEST(StaticCfg, CondBranchF22tHasBothEdges)
{
    auto m = build(std::move(MethodBuilder("cfg_f22t", 3, 2)
                                 .ifEq(1, 2, "eq")
                                 .const4(0, 1)
                                 .returnValue(0)
                                 .label("eq")
                                 .const4(0, 0)
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    const BasicBlock &entry = cfg.blocks[cfg.entry_block];
    ASSERT_EQ(entry.succs.size(), 2u);
    EXPECT_EQ(cfg.lastInst(entry).bc, Bc::IfEq);
}

TEST(StaticCfg, LoopBackEdge)
{
    // v0 = 3; do { v0 += -1 } while (v0 != 0); return v0
    auto m = build(std::move(MethodBuilder("cfg_loop", 1, 0)
                                 .const4(0, 3)
                                 .label("head")
                                 .addIntLit8(0, 0, -1)
                                 .ifNez(0, "head")
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    ASSERT_EQ(cfg.blocks.size(), 3u);

    // The loop body must be its own predecessor's successor: the
    // if-nez block branches back to the body head.
    size_t head = cfg.blockAtUnit(cfg.blocks[cfg.entry_block].count);
    const BasicBlock &body = cfg.blocks[head];
    bool has_back_edge = false;
    for (size_t s : body.succs)
        has_back_edge |= s == head;
    EXPECT_TRUE(has_back_edge);
    EXPECT_GE(body.preds.size(), 2u); // entry + itself
    for (const BasicBlock &bb : cfg.blocks)
        EXPECT_TRUE(bb.reachable);
}

TEST(StaticCfg, CatchBlockIsRoot)
{
    auto m = build(std::move(MethodBuilder("cfg_catch", 2, 1)
                                 .throwVreg(1)
                                 .catchHere()
                                 .moveException(0)
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    ASSERT_NE(cfg.catch_block, Cfg::npos);
    EXPECT_TRUE(cfg.blocks[cfg.catch_block].reachable);
    EXPECT_EQ(cfg.inst(cfg.blocks[cfg.catch_block], 0).bc,
              Bc::MoveException);
}

namespace
{

/** Constant-ness lattice over one register, for the diamond test. */
struct ReachingConstProblem
{
    struct State
    {
        bool valid = false;
        // -1 = unknown/multiple, else the constant written to v0.
        int v0 = -1;
        bool seen = false;
    };

    State boundary() const { return {true, -1, false}; }

    static bool
    merge(State &into, const State &in)
    {
        if (!in.valid)
            return false;
        if (!into.valid) {
            into = in;
            return true;
        }
        bool changed = false;
        if (in.seen && !into.seen) {
            into.seen = true;
            into.v0 = in.v0;
            changed = true;
        } else if (in.seen && into.seen && into.v0 != in.v0 &&
                   into.v0 != -1) {
            into.v0 = -1; // conflicting constants join to unknown
            changed = true;
        }
        return changed;
    }

    void
    transfer(State &s, const DecodedInst &inst) const
    {
        if (inst.bc == Bc::Const4 && !inst.defs.empty() &&
            inst.defs[0] == 0) {
            s.v0 = inst.literal;
            s.seen = true;
        }
    }
};

} // namespace

TEST(StaticDataflow, DiamondJoinsToUnknown)
{
    // if (v1) v0 = 1 else v0 = 2; join point must see "unknown".
    auto m = build(std::move(MethodBuilder("df_diamond", 2, 1)
                                 .ifEqz(1, "else")
                                 .const4(0, 1)
                                 .gotoLabel("join")
                                 .label("else")
                                 .const4(0, 2)
                                 .label("join")
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    ReachingConstProblem problem;
    auto result = solveForward(cfg, problem);

    size_t join = cfg.blocks.size();
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        if (cfg.inst(cfg.blocks[b], 0).bc == Bc::Return)
            join = b;
    ASSERT_LT(join, cfg.blocks.size());
    EXPECT_TRUE(result.block_in[join].valid);
    EXPECT_TRUE(result.block_in[join].seen);
    EXPECT_EQ(result.block_in[join].v0, -1); // 1 joined with 2
}

TEST(StaticDataflow, LoopReachesFixpoint)
{
    auto m = build(std::move(MethodBuilder("df_loop", 2, 1)
                                 .const4(0, 5)
                                 .label("head")
                                 .const4(0, 6)
                                 .ifNez(1, "head")
                                 .returnValue(0)));
    Cfg cfg = buildCfg(m);
    ReachingConstProblem problem;
    auto result = solveForward(cfg, problem);
    // Loop head sees 5 from entry and 6 from the back edge -> unknown.
    size_t head = cfg.blockAtUnit(1);
    EXPECT_EQ(result.block_in[head].v0, -1);
}
