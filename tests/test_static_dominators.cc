/**
 * @file
 * Post-dominator tree and control-dependence graph.
 *
 * Structured cases first (diamond, loop, nested branches, multiple
 * exits, unreachable blocks, infinite loops), then a randomized sweep
 * pinning the iterative solver against a brute-force reference: block
 * a post-dominates block b exactly when a lies on every path from b
 * to an exit, i.e. when removing a makes the exit unreachable from b.
 * The reference needs only graph reachability, so any disagreement
 * convicts the solver rather than the oracle sharing its bug.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "static/control_dep.hh"
#include "static/dominators.hh"
#include "support/rng.hh"

using namespace pift;
using namespace pift::static_analysis;

namespace
{

/** Build a synthetic Cfg from an adjacency list (block 0 = entry). */
Cfg
graph(const std::vector<std::vector<size_t>> &succs)
{
    Cfg cfg;
    cfg.blocks.resize(succs.size());
    for (size_t b = 0; b < succs.size(); ++b) {
        cfg.blocks[b].succs = succs[b];
        for (size_t s : succs[b])
            cfg.blocks[s].preds.push_back(b);
    }
    return cfg;
}

/** Can @p from reach any exit block while never entering @p avoid? */
bool
reachesExitAvoiding(const Cfg &cfg, size_t from, size_t avoid)
{
    if (from == avoid)
        return false;
    std::set<size_t> seen;
    std::vector<size_t> work{from};
    while (!work.empty()) {
        size_t b = work.back();
        work.pop_back();
        if (b == avoid || !seen.insert(b).second)
            continue;
        if (cfg.blocks[b].succs.empty())
            return true;
        for (size_t s : cfg.blocks[b].succs)
            work.push_back(s);
    }
    return false;
}

/** Brute force: every block that lies on all of b's paths to exit. */
std::set<size_t>
referencePostDominators(const Cfg &cfg, size_t b)
{
    std::set<size_t> out{b};
    for (size_t a = 0; a < cfg.blocks.size(); ++a)
        if (a != b && !reachesExitAvoiding(cfg, b, a))
            out.insert(a);
    return out;
}

/** The solver's answer: b plus its ipdom chain (exit excluded). */
std::set<size_t>
treePostDominators(const PostDomTree &pdt, size_t b)
{
    std::set<size_t> out{b};
    size_t w = pdt.ipdom[b];
    while (w != PostDomTree::npos && w != pdt.exit_id) {
        out.insert(w);
        w = pdt.ipdom[w];
    }
    return out;
}

void
compareAgainstReference(const Cfg &cfg, const char *what)
{
    PostDomTree pdt = buildPostDomTree(cfg);
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        bool can_exit = reachesExitAvoiding(cfg, b, cfg.blocks.size());
        ASSERT_EQ(pdt.reachesExit(b),
                  can_exit || cfg.blocks[b].succs.empty())
            << what << ": block " << b;
        if (!pdt.reachesExit(b))
            continue;
        EXPECT_EQ(treePostDominators(pdt, b),
                  referencePostDominators(cfg, b))
            << what << ": block " << b;
    }
}

} // namespace

TEST(PostDomTree, Diamond)
{
    //      0
    //     / \.
    //    1   2
    //     \ /
    //      3 (exit)
    Cfg cfg = graph({{1, 2}, {3}, {3}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    EXPECT_EQ(pdt.ipdom[0], 3u);
    EXPECT_EQ(pdt.ipdom[1], 3u);
    EXPECT_EQ(pdt.ipdom[2], 3u);
    EXPECT_EQ(pdt.ipdom[3], pdt.exit_id);
    EXPECT_TRUE(pdt.postDominates(3, 0));
    EXPECT_FALSE(pdt.postDominates(1, 0));
    EXPECT_TRUE(pdt.postDominates(0, 0)); // reflexive
}

TEST(PostDomTree, LoopWithExitBranch)
{
    // 0 -> 1 (header) -> 2 (body) -> 1, header -> 3 (exit)
    Cfg cfg = graph({{1}, {2, 3}, {1}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    EXPECT_EQ(pdt.ipdom[0], 1u);
    EXPECT_EQ(pdt.ipdom[1], 3u);
    EXPECT_EQ(pdt.ipdom[2], 1u); // body must re-test the header
    EXPECT_TRUE(pdt.postDominates(3, 2));
}

TEST(PostDomTree, MultipleExits)
{
    // 0 branches to two distinct returns: neither return
    // post-dominates 0; only the virtual exit does.
    Cfg cfg = graph({{1, 2}, {}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    EXPECT_EQ(pdt.ipdom[0], pdt.exit_id);
    EXPECT_FALSE(pdt.postDominates(1, 0));
    EXPECT_FALSE(pdt.postDominates(2, 0));
}

TEST(PostDomTree, InfiniteLoopHasNoPostDominators)
{
    // 0 -> 1 <-> 2, no exit reachable from the loop.
    Cfg cfg = graph({{1}, {2}, {1}});
    PostDomTree pdt = buildPostDomTree(cfg);
    EXPECT_FALSE(pdt.reachesExit(0));
    EXPECT_FALSE(pdt.reachesExit(1));
    EXPECT_FALSE(pdt.reachesExit(2));
}

TEST(PostDomTree, UnreachableBlockStillSolved)
{
    // Block 3 is unreachable from the entry but has a path to the
    // exit; post-dominance is defined on it regardless (the solver
    // works backwards from the exit, not forwards from the entry).
    Cfg cfg = graph({{1}, {2}, {}, {2}});
    PostDomTree pdt = buildPostDomTree(cfg);
    EXPECT_EQ(pdt.ipdom[3], 2u);
    EXPECT_TRUE(pdt.postDominates(2, 3));
}

TEST(ControlDeps, DiamondArmsDependOnTheBranch)
{
    Cfg cfg = graph({{1, 2}, {3}, {3}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    ControlDeps deps = buildControlDeps(cfg, pdt);
    EXPECT_EQ(deps.controllers[1], (std::vector<size_t>{0}));
    EXPECT_EQ(deps.controllers[2], (std::vector<size_t>{0}));
    EXPECT_TRUE(deps.controllers[3].empty()); // join post-dominates
    EXPECT_EQ(deps.region(0), (std::vector<size_t>{1, 2}));
}

TEST(ControlDeps, LoopHeaderSelfDependence)
{
    Cfg cfg = graph({{1}, {2, 3}, {1}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    ControlDeps deps = buildControlDeps(cfg, pdt);
    EXPECT_TRUE(deps.dependsOn(1, 1)); // header re-tests itself
    EXPECT_TRUE(deps.dependsOn(2, 1));
    EXPECT_FALSE(deps.dependsOn(3, 1)); // the exit always runs
}

TEST(ControlDeps, NestedBranchesCloseTransitively)
{
    //      0
    //     / \.
    //    1   |     1 branches again: 2/3 nest under both 1 and 0.
    //   / \  |
    //  2   3 |
    //   \ /  |
    //    4   |
    //     \ /
    //      5 (exit)
    Cfg cfg = graph({{1, 5}, {2, 3}, {4}, {4}, {5}, {}});
    PostDomTree pdt = buildPostDomTree(cfg);
    ControlDeps deps = buildControlDeps(cfg, pdt);
    EXPECT_EQ(deps.controllers[2], (std::vector<size_t>{1}));
    EXPECT_EQ(deps.transitive[2], (std::vector<size_t>{0, 1}));
    EXPECT_EQ(deps.transitive[4], (std::vector<size_t>{0}));
}

TEST(PostDomTree, RandomizedAgainstBruteForce)
{
    Rng rng(0xd0317a7e5eedull);
    for (unsigned round = 0; round < 200; ++round) {
        size_t n = 2 + rng.below(14);
        std::vector<std::vector<size_t>> succs(n);
        for (size_t b = 0; b < n; ++b) {
            // 0, 1 or 2 successors; forward edges biased so most
            // graphs have reachable exits, back edges kept so loops,
            // nests and exit-starved regions all occur.
            size_t arity = rng.below(100) < 20 ? 0 : 1 + rng.below(2);
            std::set<size_t> chosen;
            for (size_t k = 0; k < arity; ++k)
                chosen.insert(rng.below(n));
            succs[b].assign(chosen.begin(), chosen.end());
        }
        // Keep at least one exit so the instance is not degenerate.
        succs[n - 1].clear();
        compareAgainstReference(graph(succs), "random");
    }
}

TEST(ControlDeps, RandomizedControllersMatchDefinition)
{
    // Textbook definition: X directly depends on branch Y iff X
    // post-dominates some successor of Y (an edge Y does not always
    // take) without strictly post-dominating Y itself. Regions whose
    // successors cannot reach the exit are skipped — post-dominance
    // is not defined there and the builder is deliberately
    // conservative (it still records the edge's head).
    Rng rng(0xcdc1ull);
    for (unsigned round = 0; round < 100; ++round) {
        size_t n = 3 + rng.below(10);
        std::vector<std::vector<size_t>> succs(n);
        for (size_t b = 0; b + 1 < n; ++b) {
            size_t arity = 1 + rng.below(2);
            std::set<size_t> chosen;
            for (size_t k = 0; k < arity; ++k)
                chosen.insert(rng.below(n));
            succs[b].assign(chosen.begin(), chosen.end());
        }
        Cfg cfg = graph(succs);
        PostDomTree pdt = buildPostDomTree(cfg);
        ControlDeps deps = buildControlDeps(cfg, pdt);
        for (size_t y = 0; y < n; ++y) {
            if (cfg.blocks[y].succs.size() < 2)
                continue;
            bool starved = false;
            for (size_t v : cfg.blocks[y].succs)
                starved |= !pdt.reachesExit(v);
            if (starved)
                continue;
            for (size_t x = 0; x < n; ++x) {
                bool expect = false;
                for (size_t v : cfg.blocks[y].succs)
                    if (!pdt.postDominates(v, y) &&
                        pdt.postDominates(x, v) &&
                        !(x != y && pdt.postDominates(x, y)))
                        expect = true;
                EXPECT_EQ(deps.dependsOn(x, y), expect)
                    << "round " << round << " x=" << x << " y=" << y;
            }
        }
    }
}
