/**
 * @file
 * Static taint oracle over the DroidBench registry, both modes.
 *
 * Explicit mode: zero false positives on the benign apps, >= 90%
 * recall on the leaky apps, and the only misses are the two
 * implicit-flow apps (control dependence is invisible to an
 * explicit-flow analysis). Implicit mode: control dependence closes
 * exactly those two misses — full recall, still zero false positives
 * (selecting a constant reference under a secret branch must not
 * flag), and a strict superset of the explicit verdicts. The malware
 * analogs must all be flagged in both modes.
 */

#include <gtest/gtest.h>

#include <set>

#include "droidbench/static_oracle.hh"

using namespace pift;

namespace
{

const std::vector<droidbench::StaticVerdict> &
suiteVerdicts()
{
    static const auto verdicts =
        droidbench::staticSweep(droidbench::droidBenchApps());
    return verdicts;
}

} // namespace

TEST(StaticOracle, NoFalsePositivesOnBenign)
{
    for (const auto &v : suiteVerdicts()) {
        if (v.leaks_truth)
            continue;
        EXPECT_FALSE(v.static_leaks) << v.name;
    }
}

TEST(StaticOracle, RecallAtLeastNinetyPercent)
{
    unsigned leaky = 0;
    unsigned caught = 0;
    for (const auto &v : suiteVerdicts()) {
        if (!v.leaks_truth)
            continue;
        ++leaky;
        caught += v.static_leaks ? 1 : 0;
    }
    ASSERT_GT(leaky, 0u);
    EXPECT_GE(caught * 10, leaky * 9)
        << caught << "/" << leaky << " leaky apps detected";
}

TEST(StaticOracle, OnlyImplicitFlowsMissed)
{
    std::set<std::string> missed;
    for (const auto &v : suiteVerdicts())
        if (v.leaks_truth && !v.static_leaks)
            missed.insert(v.name);
    EXPECT_EQ(missed, (std::set<std::string>{"ImplicitFlow1_Sms",
                                             "ImplicitFlow2_Http"}));
}

TEST(StaticOracle, FlaggedAppsNameARealSink)
{
    for (const auto &v : suiteVerdicts()) {
        if (!v.static_leaks)
            continue;
        EXPECT_FALSE(v.sinks.empty()) << v.name;
    }
}

TEST(StaticOracle, DetectsAllMalwareAnalogs)
{
    auto verdicts = droidbench::staticSweep(droidbench::malwareApps());
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.static_leaks) << v.name;
}

TEST(StaticOracle, DeterministicAcrossRuns)
{
    auto again = droidbench::staticSweep(droidbench::droidBenchApps());
    const auto &first = suiteVerdicts();
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < again.size(); ++i) {
        EXPECT_EQ(again[i].static_leaks, first[i].static_leaks)
            << again[i].name;
        EXPECT_EQ(again[i].sinks, first[i].sinks) << again[i].name;
        EXPECT_EQ(again[i].implicit_leaks, first[i].implicit_leaks)
            << again[i].name;
        EXPECT_EQ(again[i].implicit_sinks, first[i].implicit_sinks)
            << again[i].name;
    }
}

TEST(StaticOracleImplicit, ClosesBothImplicitFlowMisses)
{
    std::set<std::string> missed;
    for (const auto &v : suiteVerdicts())
        if (v.leaks_truth && !v.implicit_leaks)
            missed.insert(v.name);
    EXPECT_EQ(missed, std::set<std::string>{});
}

TEST(StaticOracleImplicit, NoFalsePositivesOnBenign)
{
    // The interesting case is Benign_LengthCheck_Sms: it branches on
    // tainted data and sends a constant string from inside the
    // governed region. The dynamic tracker stays quiet (no secret
    // byte enters the payload) and the implicit mode must agree.
    for (const auto &v : suiteVerdicts()) {
        if (v.leaks_truth)
            continue;
        EXPECT_FALSE(v.implicit_leaks) << v.name;
    }
}

TEST(StaticOracleImplicit, SupersetOfExplicitVerdicts)
{
    for (const auto &v : suiteVerdicts())
        if (v.static_leaks)
            EXPECT_TRUE(v.implicit_leaks) << v.name;
}

TEST(StaticOracleImplicit, ImplicitFlowSinksAreNamed)
{
    for (const auto &v : suiteVerdicts()) {
        if (!v.implicit_leaks)
            continue;
        EXPECT_FALSE(v.implicit_sinks.empty()) << v.name;
    }
}

TEST(StaticOracleImplicit, DetectsAllMalwareAnalogs)
{
    auto verdicts = droidbench::staticSweep(droidbench::malwareApps());
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.implicit_leaks) << v.name;
}
