/**
 * @file
 * Static taint oracle over the DroidBench registry: zero false
 * positives on the benign apps, >= 90% recall on the leaky apps, and
 * the only misses are the two implicit-flow apps (control dependence
 * is invisible to an explicit-flow analysis — the documented
 * soundness gap the dynamic tainting window closes). The malware
 * analogs must all be flagged too.
 */

#include <gtest/gtest.h>

#include <set>

#include "droidbench/static_oracle.hh"

using namespace pift;

namespace
{

const std::vector<droidbench::StaticVerdict> &
suiteVerdicts()
{
    static const auto verdicts =
        droidbench::staticSweep(droidbench::droidBenchApps());
    return verdicts;
}

} // namespace

TEST(StaticOracle, NoFalsePositivesOnBenign)
{
    for (const auto &v : suiteVerdicts()) {
        if (v.leaks_truth)
            continue;
        EXPECT_FALSE(v.static_leaks) << v.name;
    }
}

TEST(StaticOracle, RecallAtLeastNinetyPercent)
{
    unsigned leaky = 0;
    unsigned caught = 0;
    for (const auto &v : suiteVerdicts()) {
        if (!v.leaks_truth)
            continue;
        ++leaky;
        caught += v.static_leaks ? 1 : 0;
    }
    ASSERT_GT(leaky, 0u);
    EXPECT_GE(caught * 10, leaky * 9)
        << caught << "/" << leaky << " leaky apps detected";
}

TEST(StaticOracle, OnlyImplicitFlowsMissed)
{
    std::set<std::string> missed;
    for (const auto &v : suiteVerdicts())
        if (v.leaks_truth && !v.static_leaks)
            missed.insert(v.name);
    EXPECT_EQ(missed, (std::set<std::string>{"ImplicitFlow1_Sms",
                                             "ImplicitFlow2_Http"}));
}

TEST(StaticOracle, FlaggedAppsNameARealSink)
{
    for (const auto &v : suiteVerdicts()) {
        if (!v.static_leaks)
            continue;
        EXPECT_FALSE(v.sinks.empty()) << v.name;
    }
}

TEST(StaticOracle, DetectsAllMalwareAnalogs)
{
    auto verdicts = droidbench::staticSweep(droidbench::malwareApps());
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.static_leaks) << v.name;
}

TEST(StaticOracle, DeterministicAcrossRuns)
{
    auto again = droidbench::staticSweep(droidbench::droidBenchApps());
    const auto &first = suiteVerdicts();
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < again.size(); ++i) {
        EXPECT_EQ(again[i].static_leaks, first[i].static_leaks)
            << again[i].name;
        EXPECT_EQ(again[i].sinks, first[i].sinks) << again[i].name;
    }
}
