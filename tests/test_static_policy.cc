/**
 * @file
 * Per-app static policy engine.
 *
 * The load-bearing invariant: joining every per-app policy over the
 * full registry reproduces the global Table 1 window derivation —
 * the per-app tables are a refinement of the device-wide policy, not
 * a different (weaker) one. The implicit-risk flag must single out
 * exactly the two Section 4.2 implicit-flow apps, and the policy
 * cross-check must confirm that the joined window covers the dynamic
 * sweep's optimum.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/crosscheck.hh"
#include "droidbench/static_oracle.hh"
#include "static/policy.hh"
#include "static/window.hh"

using namespace pift;
using namespace pift::static_analysis;

namespace
{

const std::vector<StaticPolicy> &
suitePolicies()
{
    static const auto policies = [] {
        auto all = droidbench::derivePolicies(
            droidbench::droidBenchApps());
        auto malware =
            droidbench::derivePolicies(droidbench::malwareApps());
        all.insert(all.end(), malware.begin(), malware.end());
        return all;
    }();
    return policies;
}

const WindowDerivation &
derivation()
{
    static const WindowDerivation d = deriveWindowBounds();
    return d;
}

} // namespace

TEST(StaticPolicy, JoinReproducesGlobalDerivation)
{
    StaticPolicy joined = joinPolicies(suitePolicies());
    EXPECT_EQ(joined.ni, derivation().derived_ni);
    EXPECT_EQ(joined.nt, derivation().derived_nt);
}

TEST(StaticPolicy, ImplicitRiskIsExactlyTheImplicitFlowApps)
{
    std::map<std::string, bool> risk;
    for (const StaticPolicy &p : suitePolicies())
        risk[p.app] = p.implicit_risk;
    for (const auto &[app, risky] : risk) {
        bool expected = app == "ImplicitFlow1_Sms" ||
                        app == "ImplicitFlow2_Http";
        EXPECT_EQ(risky, expected) << app;
    }
}

TEST(StaticPolicy, RiskyAppsGetTheFullImplicitChainWindow)
{
    const WindowDerivation &d = derivation();
    int chain = d.branch_tail_max + d.min_interposed +
                d.max_const_prefix;
    for (const StaticPolicy &p : suitePolicies()) {
        if (!p.implicit_risk)
            continue;
        EXPECT_GE(p.ni, chain) << p.app;
        EXPECT_EQ(p.nt, 1 + d.interposed_stores) << p.app;
    }
}

TEST(StaticPolicy, NonRiskyAppsNeedNoImplicitTerms)
{
    const WindowDerivation &d = derivation();
    for (const StaticPolicy &p : suitePolicies()) {
        if (p.implicit_risk)
            continue;
        EXPECT_LE(p.ni, d.intra_max) << p.app;
        EXPECT_EQ(p.nt, 1) << p.app;
    }
}

TEST(StaticPolicy, UntaintModeFollowsRisk)
{
    for (const StaticPolicy &p : suitePolicies())
        EXPECT_EQ(p.untaint_mode == UntaintMode::Keep,
                  p.implicit_risk)
            << p.app;
}

TEST(StaticPolicy, UsageWalkSeesBranchesAndOpcodes)
{
    // Sanity on the call-graph walk itself: every registry app
    // reaches at least one opcode, and implicit-risk derivation
    // demands a conditional branch somewhere in its code.
    for (const auto &entry : droidbench::droidBenchApps()) {
        droidbench::AppContext ctx;
        dalvik::MethodId main = entry.declare(ctx);
        PolicyInputs in = analyzeUsage(ctx.dex, main);
        EXPECT_FALSE(in.used_opcodes.empty()) << entry.name;
        if (entry.name == "ImplicitFlow1_Sms" ||
            entry.name == "ImplicitFlow2_Http") {
            EXPECT_TRUE(in.has_cond_branch) << entry.name;
        }
    }
}

TEST(StaticPolicy, CrossCheckCoversDynamicOptimum)
{
    // The replay sweep's true optimum for this suite is (17, 2)
    // (EXPERIMENTS.md); the joined static policy may only be wider.
    analysis::WindowBound optimum;
    optimum.ni = 17;
    optimum.nt = 2;
    auto pc = analysis::policyCrossCheck(suitePolicies(), optimum);
    EXPECT_TRUE(pc.covers);
    EXPECT_EQ(pc.risky_apps, 2u);
    EXPECT_EQ(pc.joined.ni, derivation().derived_ni);
}

TEST(StaticPolicy, FormatTableListsEveryApp)
{
    std::string table = formatPolicyTable(suitePolicies());
    for (const StaticPolicy &p : suitePolicies())
        EXPECT_NE(table.find(p.app), std::string::npos) << p.app;
}
