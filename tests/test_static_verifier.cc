/**
 * @file
 * Bytecode verifier: each malformed-input class is rejected with the
 * right diagnostic, warnings (unreachable code, use-before-def) do
 * not fail verification, and — exhaustively — every method registered
 * by every app in the DroidBench and malware registries verifies
 * clean.
 */

#include <gtest/gtest.h>

#include "dalvik/method.hh"
#include "droidbench/app.hh"
#include "static/verifier.hh"

using namespace pift;
using namespace pift::static_analysis;
using dalvik::Bc;
using dalvik::MethodBuilder;

namespace
{

uint16_t
op(Bc bc, uint8_t high = 0)
{
    return static_cast<uint16_t>(static_cast<unsigned>(bc) |
                                 (high << 8));
}

dalvik::Method
raw(std::vector<uint16_t> code, uint16_t nregs, uint16_t nins = 0,
    int catch_offset = -1)
{
    dalvik::Method m;
    m.name = "raw";
    m.nregs = nregs;
    m.nins = nins;
    m.code = std::move(code);
    m.catch_offset = catch_offset;
    return m;
}

bool
hasError(const VerifyResult &r, Check check)
{
    for (const auto &d : r.diagnostics)
        if (d.check == check && d.severity == Severity::Error)
            return true;
    return false;
}

bool
hasWarning(const VerifyResult &r, Check check)
{
    for (const auto &d : r.diagnostics)
        if (d.check == check && d.severity == Severity::Warning)
            return true;
    return false;
}

} // namespace

TEST(StaticVerifier, RejectsBadOpcode)
{
    auto r = verifyMethod(raw({0x00ff}, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::BadOpcode));
}

TEST(StaticVerifier, RejectsTruncatedInstruction)
{
    // const/16 needs two units; give it one.
    auto r = verifyMethod(raw({op(Bc::Const16)}, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::TruncatedInst));
}

TEST(StaticVerifier, RejectsBranchOutOfRange)
{
    // if-eqz v0, +100 — far past the end of the body.
    auto r = verifyMethod(raw({op(Bc::IfEqz), 100,
                               op(Bc::ReturnVoid)}, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::BranchOutOfRange));
}

TEST(StaticVerifier, RejectsBranchMidInstruction)
{
    // goto -1 from unit 2 targets unit 1, the payload of const/16.
    auto r = verifyMethod(raw({op(Bc::Const16), 0,
                               op(Bc::Goto, 0xff),
                               op(Bc::ReturnVoid)}, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::BranchMidInstruction));
}

TEST(StaticVerifier, RejectsRegisterOutOfFrame)
{
    // move v0, v5 in a 2-register frame.
    auto r = verifyMethod(
        raw({op(Bc::Move, 0x50), op(Bc::ReturnVoid)}, 2));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::RegisterOutOfFrame));
}

TEST(StaticVerifier, RejectsInvokeRangeOutOfFrame)
{
    // invoke-static {v3..v5}, method 0 in a 4-register frame.
    auto r = verifyMethod(
        raw({op(Bc::InvokeStatic, 3), 0, 3, op(Bc::ReturnVoid)}, 4));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::InvokeRangeOutOfFrame));
}

TEST(StaticVerifier, RejectsFallOffEnd)
{
    auto r = verifyMethod(raw({op(Bc::Nop)}, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::FallOffEnd));

    auto empty = verifyMethod(raw({}, 1));
    EXPECT_TRUE(hasError(empty, Check::FallOffEnd));
}

TEST(StaticVerifier, RejectsBadCatchOffset)
{
    // Catch entry in the middle of const/16.
    auto r = verifyMethod(
        raw({op(Bc::Const16), 0, op(Bc::ReturnVoid)}, 1, 0, 1));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasError(r, Check::BadCatchOffset));
}

TEST(StaticVerifier, RejectsBadIndicesAgainstDex)
{
    dalvik::Dex dex; // empty pool/statics beyond the built-ins

    auto pool = verifyMethod(
        raw({op(Bc::ConstString), 999, op(Bc::ReturnVoid)}, 1), &dex);
    EXPECT_TRUE(hasError(pool, Check::BadPoolIndex));

    auto cls = verifyMethod(
        raw({op(Bc::NewInstance), 999, op(Bc::ReturnVoid)}, 1), &dex);
    EXPECT_TRUE(hasError(cls, Check::BadClassIndex));

    auto stat = verifyMethod(
        raw({op(Bc::Sget), 999, op(Bc::ReturnVoid)}, 1), &dex);
    EXPECT_TRUE(hasError(stat, Check::BadStaticIndex));

    auto meth = verifyMethod(
        raw({op(Bc::InvokeStatic), 999, 0, op(Bc::ReturnVoid)}, 1),
        &dex);
    EXPECT_TRUE(hasError(meth, Check::BadMethodIndex));
}

TEST(StaticVerifier, WarnsUnreachableCode)
{
    auto m = std::move(MethodBuilder("warn_unreachable", 1, 0)
                           .gotoLabel("end")
                           .const4(0, 1) // dead
                           .label("end")
                           .returnVoid())
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok()); // warnings only
    EXPECT_TRUE(hasWarning(r, Check::UnreachableCode));
}

TEST(StaticVerifier, WarnsUseBeforeDef)
{
    // return v0 with v0 never assigned (no args).
    auto m = std::move(MethodBuilder("warn_ubd", 2, 0)
                           .returnValue(0))
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(hasWarning(r, Check::UseBeforeDef));
}

TEST(StaticVerifier, NoUseBeforeDefOnArgsOrDominatingDefs)
{
    // Args arrive defined; a def on every path silences the warning.
    auto m = std::move(MethodBuilder("clean_ubd", 3, 1)
                           .ifEqz(2, "else")
                           .const4(0, 1)
                           .gotoLabel("join")
                           .label("else")
                           .const4(0, 2)
                           .label("join")
                           .returnValue(0))
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(hasWarning(r, Check::UseBeforeDef));
}

TEST(StaticVerifier, WarnsDegenerateBranchOnEffectFreeRegion)
{
    // The governed arm only jumps back to the join: the branch
    // decides nothing.
    auto m = std::move(MethodBuilder("warn_degenerate", 2, 1)
                           .ifEqz(1, "join")
                           .gotoLabel("join")
                           .label("join")
                           .returnVoid())
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok()); // warning only
    EXPECT_TRUE(hasWarning(r, Check::DegenerateBranch));
}

TEST(StaticVerifier, NoDegenerateBranchWhenRegionDefines)
{
    auto m = std::move(MethodBuilder("clean_degenerate", 2, 1)
                           .const4(0, 1)
                           .ifEqz(1, "join")
                           .const4(0, 2) // the branch selects a value
                           .label("join")
                           .returnValue(0))
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(hasWarning(r, Check::DegenerateBranch));
}

TEST(StaticVerifier, NoDegenerateBranchOnEarlyReturn)
{
    // An early return is an effect: the branch decides whether the
    // rest of the method runs at all.
    auto m = std::move(MethodBuilder("clean_early_return", 2, 1)
                           .ifEqz(1, "rest")
                           .returnVoid()
                           .label("rest")
                           .const4(0, 1)
                           .returnValue(0))
                 .finish();
    auto r = verifyMethod(m);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(hasWarning(r, Check::DegenerateBranch));
}

TEST(StaticVerifier, RegistryHasNoDegenerateBranches)
{
    auto checkSuite = [](const std::vector<droidbench::AppEntry> &apps) {
        for (const auto &entry : apps) {
            droidbench::AppContext ctx;
            entry.declare(ctx);
            for (size_t id = 0; id < ctx.dex.methodCount(); ++id) {
                const auto &m =
                    ctx.dex.method(static_cast<dalvik::MethodId>(id));
                auto r = verifyMethod(m, &ctx.dex);
                EXPECT_FALSE(hasWarning(r, Check::DegenerateBranch))
                    << entry.name << " / " << m.name;
            }
        }
    };
    checkSuite(droidbench::droidBenchApps());
    checkSuite(droidbench::malwareApps());
}

TEST(StaticVerifier, AcceptsEveryRegistryMethod)
{
    auto checkSuite = [](const std::vector<droidbench::AppEntry> &apps) {
        for (const auto &entry : apps) {
            droidbench::AppContext ctx;
            entry.declare(ctx);
            for (size_t id = 0; id < ctx.dex.methodCount(); ++id) {
                const auto &m =
                    ctx.dex.method(static_cast<dalvik::MethodId>(id));
                auto r = verifyMethod(m, &ctx.dex);
                EXPECT_EQ(r.errorCount(), 0u)
                    << entry.name << " / " << m.name << ": "
                    << (r.diagnostics.empty()
                            ? ""
                            : formatDiagnostic(r.diagnostics.front()));
            }
        }
    };
    checkSuite(droidbench::droidBenchApps());
    checkSuite(droidbench::malwareApps());
}
