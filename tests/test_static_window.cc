/**
 * @file
 * Window-bound derivation: the per-opcode load->store distances
 * derived by abstract interpretation of the handler templates must
 * equal the annotation-based measurements behind Table 1 for every
 * taint-relevant opcode, and the derived (NI, NT) recommendation must
 * sit within +/-2 of the Figure 11 sweep optimum.
 */

#include <gtest/gtest.h>

#include "analysis/census.hh"
#include "dalvik/bytecode.hh"
#include "static/window.hh"

using namespace pift;
using dalvik::Bc;

namespace
{

const static_analysis::WindowDerivation &
derivation()
{
    static const auto d = static_analysis::deriveWindowBounds();
    return d;
}

} // namespace

TEST(StaticWindow, DerivedDistancesMatchMeasuredTable1)
{
    // census.hh measures distances from the emitter's data-move
    // annotations; the derivation recomputes them from the raw
    // instruction stream. They must agree on every row.
    for (const auto &row : analysis::bytecodeDistanceTable()) {
        const auto &w = derivation().forBc(row.bc);
        EXPECT_EQ(w.derived_distance, row.measured)
            << dalvik::bcName(row.bc);
    }
}

TEST(StaticWindow, NonMoversDeriveNoDistance)
{
    EXPECT_EQ(derivation().forBc(Bc::Nop).derived_distance, -1);
    EXPECT_EQ(derivation().forBc(Bc::Goto).derived_distance, -1);
    EXPECT_EQ(derivation().forBc(Bc::IfEq).derived_distance, -1);
    EXPECT_EQ(derivation().forBc(Bc::ReturnVoid).derived_distance, -1);
}

TEST(StaticWindow, RuntimeCalloutsDeriveUnknown)
{
    // Division traps to the runtime between load and store; Table 1
    // reports these as "unknown".
    EXPECT_EQ(derivation().forBc(Bc::DivInt).derived_distance, -2);
    EXPECT_EQ(derivation().forBc(Bc::IntToFloat).derived_distance, -2);
    EXPECT_EQ(derivation().forBc(Bc::FloatToInt).derived_distance, -2);
}

TEST(StaticWindow, KnownLandmarkDistances)
{
    // Hand-checked positions in the handler templates.
    EXPECT_EQ(derivation().forBc(Bc::Move).derived_distance, 3);
    EXPECT_EQ(derivation().forBc(Bc::Iget).derived_distance, 5);
    EXPECT_EQ(derivation().forBc(Bc::AputObject).derived_distance, 10);
    EXPECT_EQ(derivation().forBc(Bc::MulLong).derived_distance, 10);
    EXPECT_EQ(derivation().intra_max, 10);
}

TEST(StaticWindow, DerivedWindowBounds)
{
    const auto &d = derivation();
    // branch tail (6) + shortest interposable handler (6) + longest
    // const prefix (7), floored by the intra-handler max (10).
    EXPECT_EQ(d.branch_tail_max, 6);
    EXPECT_EQ(d.min_interposed, 6);
    EXPECT_EQ(d.max_const_prefix, 7);
    EXPECT_EQ(d.derived_ni, 19);
    EXPECT_EQ(d.derived_nt, 2);
}

TEST(StaticWindow, DerivedBoundsNearSweepOptimum)
{
    // The Figure 11 sweep's smallest 100%-accuracy point, pinned by
    // bench_fig11 / bench_static_oracle: (NI=17, NT=2). The statically
    // derived recommendation must land within +/-2 of it.
    constexpr int sweep_ni = 17;
    constexpr int sweep_nt = 2;
    EXPECT_LE(std::abs(derivation().derived_ni - sweep_ni), 2);
    EXPECT_LE(std::abs(derivation().derived_nt - sweep_nt), 2);
}

TEST(StaticWindow, StoreCountsBoundNt)
{
    // NT must cover the interposed handler's stores plus the
    // branch-operand store itself.
    const auto &d = derivation();
    EXPECT_EQ(d.derived_nt, 1 + d.interposed_stores);
    for (const auto &w : d.opcodes) {
        if (w.derived_distance >= 0) {
            EXPECT_GE(w.data_store_count, 1) << dalvik::bcName(w.bc);
        }
    }
}
