/**
 * @file
 * Unit tests for the statistics containers and renderers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/heatmap.hh"
#include "stats/histogram.hh"
#include "stats/render.hh"
#include "stats/timeseries.hh"

using namespace pift;
using stats::HeatMap;
using stats::Histogram;
using stats::TimeSeries;

TEST(Histogram, BasicCounts)
{
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.at(3), 2u);
    EXPECT_EQ(h.at(7), 1u);
    EXPECT_EQ(h.at(0), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(4);
    h.add(5);
    h.add(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.cdf(4), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.cdf(1000), 1.0);
}

TEST(Histogram, Probabilities)
{
    Histogram h(10);
    for (int i = 0; i < 8; ++i)
        h.add(2);
    for (int i = 0; i < 2; ++i)
        h.add(5);
    EXPECT_DOUBLE_EQ(h.probability(2), 0.8);
    EXPECT_DOUBLE_EQ(h.probability(5), 0.2);
    EXPECT_DOUBLE_EQ(h.probability(9), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(2), 0.8);
    EXPECT_DOUBLE_EQ(h.cdf(5), 1.0);
}

TEST(Histogram, MeanOfInRangeSamples)
{
    Histogram h(10);
    h.add(2);
    h.add(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    h.add(100); // overflow: excluded from the mean
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h(10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.probability(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(10), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(10);
    h.add(1, 10);
    h.add(2, 30);
    EXPECT_EQ(h.count(), 40u);
    EXPECT_DOUBLE_EQ(h.probability(2), 0.75);
}

TEST(Histogram, MergeAndClear)
{
    Histogram a(8), b(8);
    a.add(1);
    b.add(1);
    b.add(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.at(1), 2u);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.at(1), 0u);
}

TEST(Histogram, Quantile)
{
    Histogram h(20);
    for (uint64_t v = 1; v <= 10; ++v)
        h.add(v);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(1.0), 10u);
}

TEST(HeatMap, SetAndGet)
{
    HeatMap m("NT", 1, 3, "NI", 1, 5);
    m.set(2, 4, 42.5);
    EXPECT_DOUBLE_EQ(m.at(2, 4), 42.5);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.max(), 42.5);
    EXPECT_DOUBLE_EQ(m.min(), 0.0);
}

TEST(HeatMap, AxesMetadata)
{
    HeatMap m("row", -2, 2, "col", 0, 9);
    EXPECT_EQ(m.rowLo(), -2);
    EXPECT_EQ(m.rowHi(), 2);
    EXPECT_EQ(m.colLo(), 0);
    EXPECT_EQ(m.colHi(), 9);
    m.set(-2, 0, 1.0);
    m.set(2, 9, -3.0);
    EXPECT_DOUBLE_EQ(m.at(-2, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.min(), -3.0);
}

TEST(TimeSeries, RecordAndQuery)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    ts.record(10, 1.0);
    ts.record(20, 5.0);
    ts.record(30, 2.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(5), 0.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(10), 1.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(25), 5.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(1000), 2.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(ts.lastValue(), 2.0);
}

TEST(TimeSeries, SameInstantCollapses)
{
    TimeSeries ts;
    ts.record(10, 1.0);
    ts.record(10, 9.0);
    EXPECT_EQ(ts.points().size(), 1u);
    EXPECT_DOUBLE_EQ(ts.valueAt(10), 9.0);
}

TEST(TimeSeries, Downsample)
{
    TimeSeries ts;
    ts.record(0, 0.0);
    ts.record(50, 10.0);
    auto pts = ts.downsample(11, 100);
    ASSERT_EQ(pts.size(), 11u);
    EXPECT_DOUBLE_EQ(pts[0].value, 0.0);
    EXPECT_DOUBLE_EQ(pts[5].value, 10.0);  // at seq 50
    EXPECT_DOUBLE_EQ(pts[10].value, 10.0); // at horizon
}

TEST(Render, DistributionContainsRows)
{
    Histogram h(10);
    h.add(1);
    h.add(1);
    h.add(2);
    std::ostringstream os;
    stats::renderDistribution(os, "test dist", h, 5);
    std::string text = os.str();
    EXPECT_NE(text.find("test dist"), std::string::npos);
    EXPECT_NE(text.find("0.6667"), std::string::npos);
}

TEST(Render, HeatMapCsvShape)
{
    HeatMap m("NT", 1, 2, "NI", 1, 3);
    m.set(1, 1, 7);
    std::ostringstream os;
    stats::renderHeatMapCsv(os, m);
    std::string text = os.str();
    // header + 6 cells
    size_t lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, 7u);
    EXPECT_NE(text.find("1,1,7"), std::string::npos);
}

TEST(Render, TimeSeriesTable)
{
    TimeSeries a, b;
    a.record(0, 1.0);
    b.record(0, 2.0);
    std::ostringstream os;
    stats::renderTimeSeries(os, "t", {"a", "b"}, {&a, &b}, 100, 3);
    std::string text = os.str();
    EXPECT_NE(text.find("instructions,a,b"), std::string::npos);
    EXPECT_NE(text.find("100,1,2"), std::string::npos);
}
