/**
 * @file
 * Direct coverage for the support layer: Status/Expected plumbing
 * and the warning rate limiter. These primitives carry every
 * recoverable failure in the repo (trace I/O, persistence, degraded
 * hardware paths), so their contracts are pinned here rather than
 * only exercised incidentally.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "support/expected.hh"
#include "support/logging.hh"

using namespace pift;

namespace
{

Expected<int>
parsePositive(int v)
{
    if (v <= 0)
        return Status::error("not positive");
    return v;
}

} // namespace

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.message(), "");
}

TEST(Status, ErrorCarriesMessage)
{
    Status s = Status::error("disk on fire");
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(static_cast<bool>(s));
    EXPECT_EQ(s.message(), "disk on fire");
}

TEST(Status, CopiesPreserveState)
{
    Status s = Status::error("original");
    Status t = s;
    EXPECT_FALSE(t.ok());
    EXPECT_EQ(t.message(), "original");
}

TEST(Expected, HoldsValueOnSuccess)
{
    auto e = parsePositive(42);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(static_cast<bool>(e));
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.valueOr(-1), 42);
    EXPECT_TRUE(e.status().ok());
    EXPECT_EQ(e.message(), "");
}

TEST(Expected, PropagatesStatusOnFailure)
{
    auto e = parsePositive(-3);
    EXPECT_FALSE(e.ok());
    EXPECT_FALSE(static_cast<bool>(e));
    EXPECT_EQ(e.message(), "not positive");
    EXPECT_EQ(e.valueOr(-1), -1);
}

TEST(Expected, ValueIsMutableThroughAccessor)
{
    Expected<std::string> e(std::string("abc"));
    e.value() += "def";
    EXPECT_EQ(e.value(), "abcdef");
}

TEST(Expected, MoveOnlyFlow)
{
    // Expected must not require copyable values.
    Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
    ASSERT_TRUE(e.ok());
    std::unique_ptr<int> v = std::move(e.value());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 7);
}

TEST(WarnRateLimit, AllowsExactlyLimitPerKey)
{
    resetWarnRateLimits();
    const std::string key = "test_support.allow";
    int allowed = 0;
    for (int i = 0; i < 10; ++i)
        if (warnRateLimit(key, 3))
            ++allowed;
    EXPECT_EQ(allowed, 3);

    // A different key has its own budget.
    EXPECT_TRUE(warnRateLimit("test_support.other", 3));
}

TEST(WarnRateLimit, ResetRestoresBudget)
{
    resetWarnRateLimits();
    const std::string key = "test_support.reset";
    EXPECT_TRUE(warnRateLimit(key, 1));
    EXPECT_FALSE(warnRateLimit(key, 1));
    resetWarnRateLimits();
    EXPECT_TRUE(warnRateLimit(key, 1));
}

TEST(WarnRateLimit, SuppressedWarnsStayCountable)
{
    resetWarnRateLimits();
    uint64_t warns_before = warnCount();
    uint64_t suppressed_before = warnSuppressedCount();

    // The macro warns twice, then suppresses — but every call must
    // remain visible through the counters: rate limiting hides
    // output, not incidents.
    for (int i = 0; i < 5; ++i)
        pift_warn_limited(2, "rate-limit test warning %d", i);

    EXPECT_EQ(warnCount() - warns_before, 5u);
    EXPECT_EQ(warnSuppressedCount() - suppressed_before, 3u);
}

TEST(WarnRateLimit, MacroKeysBySite)
{
    resetWarnRateLimits();
    uint64_t suppressed_before = warnSuppressedCount();
    // Two distinct call sites, one emission each: neither suppresses.
    pift_warn_limited(1, "site one");
    pift_warn_limited(1, "site two");
    EXPECT_EQ(warnSuppressedCount() - suppressed_before, 0u);
}
