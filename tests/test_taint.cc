/**
 * @file
 * Unit and property tests for AddrRange and the coalescing RangeSet.
 * The property tests drive a RangeSet and a naive per-byte model with
 * the same random operation stream and require identical answers.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hh"
#include "taint/addr_range.hh"
#include "taint/range_set.hh"

using namespace pift;
using taint::AddrRange;
using taint::RangeSet;

TEST(AddrRangeTest, Basics)
{
    AddrRange r(10, 19);
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.bytes(), 10u);
    EXPECT_TRUE(r.contains(10));
    EXPECT_TRUE(r.contains(19));
    EXPECT_FALSE(r.contains(20));

    AddrRange empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_EQ(empty.bytes(), 0u);
}

TEST(AddrRangeTest, FromSize)
{
    AddrRange r = AddrRange::fromSize(0x100, 4);
    EXPECT_EQ(r.start, 0x100u);
    EXPECT_EQ(r.end, 0x103u);
}

TEST(AddrRangeTest, PaperOverlapCondition)
{
    // max(s_i, s_L) <= min(e_i, e_L)
    EXPECT_TRUE(AddrRange(0, 10).overlaps(AddrRange(10, 20)));
    EXPECT_TRUE(AddrRange(5, 7).overlaps(AddrRange(0, 100)));
    EXPECT_TRUE(AddrRange(0, 100).overlaps(AddrRange(5, 7)));
    EXPECT_FALSE(AddrRange(0, 9).overlaps(AddrRange(10, 20)));
    EXPECT_FALSE(AddrRange(21, 30).overlaps(AddrRange(10, 20)));
    EXPECT_FALSE(AddrRange().overlaps(AddrRange(0, 100)));
}

TEST(AddrRangeTest, TouchesIncludesAdjacency)
{
    EXPECT_TRUE(AddrRange(0, 9).touches(AddrRange(10, 20)));
    EXPECT_TRUE(AddrRange(10, 20).touches(AddrRange(0, 9)));
    EXPECT_FALSE(AddrRange(0, 8).touches(AddrRange(10, 20)));
    // No wrap-around at the top of the address space.
    AddrRange top(0xffff'fff0, 0xffff'ffff);
    EXPECT_FALSE(top.touches(AddrRange(0, 10)));
}

TEST(AddrRangeTest, Covers)
{
    EXPECT_TRUE(AddrRange(0, 100).covers(AddrRange(10, 20)));
    EXPECT_TRUE(AddrRange(10, 20).covers(AddrRange(10, 20)));
    EXPECT_FALSE(AddrRange(10, 20).covers(AddrRange(10, 21)));
}

TEST(RangeSetTest, InsertAndQuery)
{
    RangeSet set;
    EXPECT_TRUE(set.insert(AddrRange(100, 199)));
    EXPECT_TRUE(set.overlaps(AddrRange(150, 150)));
    EXPECT_TRUE(set.overlaps(AddrRange(0, 100)));
    EXPECT_FALSE(set.overlaps(AddrRange(200, 300)));
    EXPECT_EQ(set.bytes(), 100u);
    EXPECT_EQ(set.rangeCount(), 1u);
}

TEST(RangeSetTest, InsertReturnsChangedOnlyForNewBytes)
{
    RangeSet set;
    EXPECT_TRUE(set.insert(AddrRange(100, 199)));
    EXPECT_FALSE(set.insert(AddrRange(120, 130))); // fully covered
    EXPECT_FALSE(set.insert(AddrRange(100, 199))); // identical
    EXPECT_TRUE(set.insert(AddrRange(150, 250)));  // extends
    EXPECT_EQ(set.bytes(), 151u);
}

TEST(RangeSetTest, CoalescesOverlappingAndAdjacent)
{
    RangeSet set;
    set.insert(AddrRange(0, 9));
    set.insert(AddrRange(20, 29));
    EXPECT_EQ(set.rangeCount(), 2u);
    set.insert(AddrRange(10, 19)); // bridges both (adjacent)
    EXPECT_EQ(set.rangeCount(), 1u);
    EXPECT_EQ(set.bytes(), 30u);
    auto ranges = set.ranges();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], AddrRange(0, 29));
}

TEST(RangeSetTest, SequentialStoresMergeIntoOneRange)
{
    // The string-copy pattern: 2-byte stores at consecutive addresses
    // must coalesce, or Figure 17's range counts could not hold.
    RangeSet set;
    for (Addr a = 0x1000; a < 0x1000 + 30; a += 2)
        set.insert(AddrRange(a, a + 1));
    EXPECT_EQ(set.rangeCount(), 1u);
    EXPECT_EQ(set.bytes(), 30u);
}

TEST(RangeSetTest, RemoveSplits)
{
    RangeSet set;
    set.insert(AddrRange(0, 99));
    EXPECT_TRUE(set.remove(AddrRange(40, 59)));
    EXPECT_EQ(set.rangeCount(), 2u);
    EXPECT_EQ(set.bytes(), 80u);
    EXPECT_TRUE(set.overlaps(AddrRange(39, 39)));
    EXPECT_FALSE(set.overlaps(AddrRange(40, 59)));
    EXPECT_TRUE(set.overlaps(AddrRange(60, 60)));
}

TEST(RangeSetTest, RemoveEdgesAndWhole)
{
    RangeSet set;
    set.insert(AddrRange(10, 19));
    EXPECT_TRUE(set.remove(AddrRange(10, 12)));
    EXPECT_EQ(set.ranges()[0], AddrRange(13, 19));
    EXPECT_TRUE(set.remove(AddrRange(18, 25)));
    EXPECT_EQ(set.ranges()[0], AddrRange(13, 17));
    EXPECT_TRUE(set.remove(AddrRange(0, 100)));
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.bytes(), 0u);
}

TEST(RangeSetTest, RemoveReturnsFalseWhenNothingCovered)
{
    RangeSet set;
    set.insert(AddrRange(10, 19));
    EXPECT_FALSE(set.remove(AddrRange(30, 40)));
    EXPECT_FALSE(set.remove(AddrRange(0, 9)));
    EXPECT_EQ(set.bytes(), 10u);
}

TEST(RangeSetTest, RemoveSpanningMultipleRanges)
{
    RangeSet set;
    set.insert(AddrRange(0, 9));
    set.insert(AddrRange(20, 29));
    set.insert(AddrRange(40, 49));
    EXPECT_TRUE(set.remove(AddrRange(5, 44)));
    auto ranges = set.ranges();
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0], AddrRange(0, 4));
    EXPECT_EQ(ranges[1], AddrRange(45, 49));
}

TEST(RangeSetTest, Clear)
{
    RangeSet set;
    set.insert(AddrRange(0, 9));
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.bytes(), 0u);
    EXPECT_FALSE(set.overlaps(AddrRange(0, 9)));
}

namespace
{

/** Naive reference: a set of tainted byte addresses. */
class ByteModel
{
  public:
    bool
    overlaps(const AddrRange &r) const
    {
        for (Addr a = r.start; a <= r.end; ++a) {
            if (bytes.count(a))
                return true;
            if (a == r.end)
                break;
        }
        return false;
    }

    bool
    insert(const AddrRange &r)
    {
        bool changed = false;
        for (Addr a = r.start; a <= r.end; ++a) {
            changed |= bytes.insert(a).second;
            if (a == r.end)
                break;
        }
        return changed;
    }

    bool
    remove(const AddrRange &r)
    {
        bool changed = false;
        for (Addr a = r.start; a <= r.end; ++a) {
            changed |= bytes.erase(a) > 0;
            if (a == r.end)
                break;
        }
        return changed;
    }

    size_t count() const { return bytes.size(); }

  private:
    std::set<Addr> bytes;
};

AddrRange
smallRandomRange(Rng &rng)
{
    Addr start = 1000 + static_cast<Addr>(rng.below(256));
    Addr len = 1 + static_cast<Addr>(rng.below(24));
    return AddrRange::fromSize(start, len);
}

} // namespace

class RangeSetProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RangeSetProperty, MatchesByteModelUnderRandomOps)
{
    Rng rng(GetParam());
    RangeSet set;
    ByteModel model;

    for (int step = 0; step < 3000; ++step) {
        AddrRange r = smallRandomRange(rng);
        switch (rng.below(3)) {
          case 0: {
            bool a = set.insert(r);
            bool b = model.insert(r);
            ASSERT_EQ(a, b) << "insert step " << step;
            break;
          }
          case 1: {
            bool a = set.remove(r);
            bool b = model.remove(r);
            ASSERT_EQ(a, b) << "remove step " << step;
            break;
          }
          default: {
            ASSERT_EQ(set.overlaps(r), model.overlaps(r))
                << "query step " << step;
            break;
          }
        }
        ASSERT_EQ(set.bytes(), model.count()) << "bytes step " << step;
    }

    // Structural invariants: disjoint, sorted, non-adjacent.
    auto ranges = set.ranges();
    for (size_t i = 1; i < ranges.size(); ++i) {
        ASSERT_TRUE(ranges[i - 1].end + 1 < ranges[i].start)
            << "ranges " << i - 1 << " and " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
