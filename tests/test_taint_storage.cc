/**
 * @file
 * Unit and property tests for the hardware taint-storage models: the
 * Figure 6 range cache (capacity, PID tags, coalescing, eviction
 * policies, splits) and the fixed-granularity word store.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/taint_storage.hh"
#include "support/rng.hh"

using namespace pift;
using core::EvictPolicy;
using core::IdealRangeStore;
using core::TaintStorage;
using core::TaintStorageParams;
using core::WordTaintStorage;
using taint::AddrRange;

namespace
{

TaintStorageParams
params(size_t entries, EvictPolicy policy = EvictPolicy::LruSpill,
       bool coalesce = true)
{
    TaintStorageParams p;
    p.entries = entries;
    p.policy = policy;
    p.coalesce = coalesce;
    return p;
}

} // namespace

TEST(TaintStorage, InsertAndQuery)
{
    TaintStorage st(params(8));
    EXPECT_TRUE(st.insert(1, AddrRange(0x100, 0x1ff)));
    EXPECT_TRUE(st.query(1, AddrRange(0x180, 0x180)));
    EXPECT_FALSE(st.query(1, AddrRange(0x200, 0x210)));
    EXPECT_EQ(st.bytes(), 0x100u);
    EXPECT_EQ(st.validEntries(), 1u);
}

TEST(TaintStorage, PidTagsSeparateProcesses)
{
    // Figure 6: a lookup hits only when the process id matches.
    TaintStorage st(params(8));
    st.insert(14, AddrRange(0x3f8510b4, 0x3f8510bb));
    EXPECT_TRUE(st.query(14, AddrRange(0x3f8510b4, 0x3f8510b4)));
    EXPECT_FALSE(st.query(201, AddrRange(0x3f8510b4, 0x3f8510b4)));
}

TEST(TaintStorage, CoalescesSamePidRanges)
{
    TaintStorage st(params(8));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x110, 0x11f)); // adjacent
    st.insert(1, AddrRange(0x118, 0x130)); // overlapping
    EXPECT_EQ(st.validEntries(), 1u);
    EXPECT_EQ(st.bytes(), 0x31u);
}

TEST(TaintStorage, CoalesceRespectsPid)
{
    TaintStorage st(params(8));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(2, AddrRange(0x110, 0x11f));
    EXPECT_EQ(st.validEntries(), 2u);
}

TEST(TaintStorage, InsertChangeDetection)
{
    TaintStorage st(params(8));
    EXPECT_TRUE(st.insert(1, AddrRange(0x100, 0x1ff)));
    EXPECT_FALSE(st.insert(1, AddrRange(0x120, 0x130)));
    EXPECT_TRUE(st.insert(1, AddrRange(0x1f0, 0x20f)));
}

TEST(TaintStorage, RemoveShrinksAndSplits)
{
    TaintStorage st(params(8));
    st.insert(1, AddrRange(0x100, 0x1ff));
    EXPECT_TRUE(st.remove(1, AddrRange(0x140, 0x14f)));
    EXPECT_EQ(st.validEntries(), 2u);
    EXPECT_FALSE(st.query(1, AddrRange(0x140, 0x14f)));
    EXPECT_TRUE(st.query(1, AddrRange(0x13f, 0x13f)));
    EXPECT_TRUE(st.query(1, AddrRange(0x150, 0x150)));

    EXPECT_TRUE(st.remove(1, AddrRange(0x000, 0x2ff)));
    EXPECT_EQ(st.validEntries(), 0u);
    EXPECT_EQ(st.bytes(), 0u);
}

TEST(TaintStorage, LruSpillKeepsTaintExact)
{
    // Eviction to secondary storage: no taint is lost, just slower
    // (the paper's 'cache miss' analogy).
    TaintStorage st(params(2, EvictPolicy::LruSpill, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    st.insert(1, AddrRange(0x500, 0x50f)); // evicts the LRU entry
    EXPECT_EQ(st.stats().evictions, 1u);
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_GT(st.stats().spill_hits, 0u);
    EXPECT_TRUE(st.query(1, AddrRange(0x300, 0x300)));
    EXPECT_TRUE(st.query(1, AddrRange(0x500, 0x500)));
    EXPECT_EQ(st.spilledRanges(), 1u);
}

TEST(TaintStorage, LruDropLosesTaint)
{
    // Dropping avoids the miss delay but may cause false negatives
    // (Section 3.3).
    TaintStorage st(params(2, EvictPolicy::LruDrop, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    st.insert(1, AddrRange(0x500, 0x50f));
    EXPECT_FALSE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_TRUE(st.query(1, AddrRange(0x500, 0x500)));
    EXPECT_EQ(st.stats().dropped, 1u);
}

TEST(TaintStorage, DropNewRefusesInsertion)
{
    TaintStorage st(params(2, EvictPolicy::DropNew, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    EXPECT_FALSE(st.insert(1, AddrRange(0x500, 0x50f)));
    EXPECT_FALSE(st.query(1, AddrRange(0x500, 0x500)));
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
}

TEST(TaintStorage, LruVictimSelection)
{
    TaintStorage st(params(2, EvictPolicy::LruDrop, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    // Touch the first entry so the second becomes LRU.
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    st.insert(1, AddrRange(0x500, 0x50f));
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_FALSE(st.query(1, AddrRange(0x300, 0x300)));
}

TEST(TaintStorage, StatsCountOperations)
{
    TaintStorage st(params(4));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.query(1, AddrRange(0x100, 0x100));
    st.query(1, AddrRange(0x900, 0x900));
    st.remove(1, AddrRange(0x100, 0x10f));
    EXPECT_EQ(st.stats().inserts, 1u);
    EXPECT_EQ(st.stats().lookups, 2u);
    EXPECT_EQ(st.stats().lookup_hits, 1u);
    EXPECT_EQ(st.stats().removes, 1u);
    EXPECT_EQ(st.stats().max_entries_used, 1u);
    EXPECT_GT(st.stats().entry_compares, 0u);
}

TEST(TaintStorage, Paper32KiBSizing)
{
    // Section 3.3: 12 bytes per PID-tagged entry -> ~2730 entries in
    // 32 KiB; 8 bytes untagged -> 4096.
    EXPECT_EQ((32 * 1024) / 12, 2730);
    EXPECT_EQ((32 * 1024) / 8, 4096);
    TaintStorage st(params(2730));
    for (uint32_t i = 0; i < 2730; ++i)
        st.insert(1, AddrRange(i * 0x100, i * 0x100 + 4));
    EXPECT_EQ(st.validEntries(), 2730u);
    EXPECT_EQ(st.stats().evictions, 0u);
}

TEST(TaintStorage, LruDropSetsSaturationOnVictim)
{
    TaintStorage st(params(2, EvictPolicy::LruDrop, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    EXPECT_FALSE(st.saturated(1)); // nothing lost yet
    st.insert(2, AddrRange(0x300, 0x30f));
    st.insert(2, AddrRange(0x500, 0x50f)); // drops pid 1's entry
    EXPECT_TRUE(st.saturated(1));
    EXPECT_FALSE(st.saturated(2)); // pid 2 lost nothing
    EXPECT_EQ(st.stats().saturation_events, 1u);
}

TEST(TaintStorage, DropNewSetsSaturationOnRefusedPid)
{
    TaintStorage st(params(2, EvictPolicy::DropNew, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    EXPECT_FALSE(st.saturated(1));
    EXPECT_FALSE(st.insert(2, AddrRange(0x500, 0x50f)));
    EXPECT_TRUE(st.saturated(2)); // the refused process lost taint
    EXPECT_FALSE(st.saturated(1)); // resident entries intact
    EXPECT_EQ(st.stats().saturation_events, 1u);
}

TEST(TaintStorage, LruSpillNeverSaturates)
{
    TaintStorage st(params(2, EvictPolicy::LruSpill, false));
    for (uint32_t i = 0; i < 32; ++i)
        st.insert(1, AddrRange(i * 0x100, i * 0x100 + 4));
    EXPECT_GT(st.stats().evictions, 0u);
    EXPECT_FALSE(st.saturated(1)); // spilled, not lost
    EXPECT_EQ(st.stats().saturation_events, 0u);
}

TEST(TaintStorage, SaturationClearsWithStateAndOnDemand)
{
    TaintStorage st(params(1, EvictPolicy::LruDrop, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    ASSERT_TRUE(st.saturated(1));
    st.clearSaturation();
    EXPECT_FALSE(st.saturated(1));

    st.insert(1, AddrRange(0x500, 0x50f));
    ASSERT_TRUE(st.saturated(1));
    st.clear();
    EXPECT_FALSE(st.saturated(1));
}

TEST(TaintStorage, SpillReinsertDoesNotDoubleCount)
{
    // Re-inserting a range that earlier spilled to secondary storage
    // must re-absorb the spilled copy: the taint exists once, so
    // bytes()/rangeCount() count it once.
    TaintStorage st(params(2, EvictPolicy::LruSpill, false));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    st.insert(1, AddrRange(0x500, 0x50f)); // spills [0x100, 0x10f]
    ASSERT_EQ(st.spilledRanges(), 1u);
    ASSERT_EQ(st.bytes(), 48u);

    // The re-insert spills [0x300, 0x30f] and must pull the original
    // [0x100, 0x10f] copy back out of the spill set.
    st.insert(1, AddrRange(0x100, 0x10f));
    EXPECT_EQ(st.bytes(), 48u);
    EXPECT_EQ(st.rangeCount(), 3u);
    EXPECT_EQ(st.spilledRanges(), 1u);
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_TRUE(st.query(1, AddrRange(0x300, 0x300)));
    EXPECT_TRUE(st.query(1, AddrRange(0x500, 0x500)));
}

TEST(TaintStorage, SpillReinsertReportsNoNewBytes)
{
    // With coalescing on, insert() returns whether the range covered
    // any byte that was not already tainted — and a spilled byte IS
    // still tainted, just slower to reach.
    TaintStorage st(params(2, EvictPolicy::LruSpill, true));
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(1, AddrRange(0x300, 0x30f));
    st.insert(1, AddrRange(0x500, 0x50f)); // spills [0x100, 0x10f]
    ASSERT_EQ(st.spilledRanges(), 1u);
    EXPECT_FALSE(st.insert(1, AddrRange(0x100, 0x10f)));
    EXPECT_EQ(st.bytes(), 48u);
}

TEST(TaintStorage, RemoveSplitCountsDropOnce)
{
    // A mid-range remove on a full DropNew cache cannot allocate the
    // right-hand fragment: exactly one drop, flagged as saturation.
    TaintStorage st(params(1, EvictPolicy::DropNew, false));
    st.insert(1, AddrRange(0x100, 0x1ff));
    EXPECT_TRUE(st.remove(1, AddrRange(0x140, 0x14f)));
    EXPECT_EQ(st.stats().dropped, 1u);
    EXPECT_EQ(st.stats().saturation_events, 1u);
    EXPECT_TRUE(st.saturated(1));
    // The left fragment survives in place; the right one was lost.
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x13f)));
    EXPECT_FALSE(st.query(1, AddrRange(0x150, 0x150)));
}

TEST(TaintStorage, RemoveSplitRefreshesMaxEntries)
{
    // The split path allocates an entry; the high-water mark must see
    // it even though no insert() ran.
    TaintStorage st(params(4));
    st.insert(1, AddrRange(0x100, 0x1ff));
    ASSERT_EQ(st.stats().max_entries_used, 1u);
    EXPECT_TRUE(st.remove(1, AddrRange(0x140, 0x14f)));
    EXPECT_EQ(st.validEntries(), 2u);
    EXPECT_EQ(st.stats().max_entries_used, 2u);
}

class SpillDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SpillDifferential, TinySpillCacheMatchesIdealStore)
{
    // The LruSpill policy is exact by construction: whatever the
    // cache cannot hold lives in secondary storage, and a byte is
    // never in both at once. Drive a tiny cache hard enough that it
    // spills constantly and check it stays equivalent to the
    // unbounded reference — same answers AND same accounting — after
    // every single operation.
    Rng rng(GetParam());
    TaintStorage hw(params(4, EvictPolicy::LruSpill, true));
    IdealRangeStore ideal;

    for (int step = 0; step < 4000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(3));
        Addr start = 0x1000 + static_cast<Addr>(rng.below(1024));
        Addr len = 1 + static_cast<Addr>(rng.below(32));
        AddrRange r = AddrRange::fromSize(start, len);
        switch (rng.below(4)) {
          case 0:
          case 1:
            ASSERT_EQ(hw.insert(pid, r), ideal.insert(pid, r))
                << "step " << step;
            break;
          case 2:
            ASSERT_EQ(hw.remove(pid, r), ideal.remove(pid, r))
                << "step " << step;
            break;
          default:
            ASSERT_EQ(hw.query(pid, r), ideal.query(pid, r))
                << "step " << step;
            break;
        }
        ASSERT_EQ(hw.bytes(), ideal.bytes()) << "step " << step;
    }
    // The stream must actually have exercised the spill machinery.
    EXPECT_GT(hw.stats().evictions, 0u);
    EXPECT_EQ(hw.stats().saturation_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillDifferential,
                         ::testing::Values(7, 19, 41, 73));

class TinyLossyStorage
    : public ::testing::TestWithParam<std::tuple<EvictPolicy, uint64_t>>
{};

TEST_P(TinyLossyStorage, NeverFalsePositiveAndSaturationIsExact)
{
    // Section 3.3: a saturated cache under a lossy policy may forget
    // taint (false negatives) but must never invent it. Also: the
    // saturation flag must be set exactly when a process actually
    // lost a range — a pid that never lost anything stays exact, so
    // its negatives stay trustworthy.
    auto [policy, seed] = GetParam();
    Rng rng(seed);
    TaintStorage hw(params(3, policy, true));
    IdealRangeStore ideal;

    for (int step = 0; step < 3000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(3));
        Addr start = 0x1000 + static_cast<Addr>(rng.below(768));
        Addr len = 1 + static_cast<Addr>(rng.below(24));
        AddrRange r = AddrRange::fromSize(start, len);
        switch (rng.below(4)) {
          case 0:
          case 1:
            hw.insert(pid, r);
            ideal.insert(pid, r);
            break;
          case 2:
            hw.remove(pid, r);
            ideal.remove(pid, r);
            break;
          default:
            if (hw.query(pid, r)) {
                // Never a false positive, saturated or not.
                ASSERT_TRUE(ideal.query(pid, r)) << "step " << step;
            } else if (!hw.saturated(pid)) {
                // Unsaturated process: negatives are exact too.
                ASSERT_FALSE(ideal.query(pid, r)) << "step " << step;
            }
            break;
        }
    }
    // The stream above overflows 3 entries; some process lost state
    // and the loss was flagged.
    EXPECT_GT(hw.stats().saturation_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, TinyLossyStorage,
    ::testing::Combine(::testing::Values(EvictPolicy::LruDrop,
                                         EvictPolicy::DropNew),
                       ::testing::Values(5u, 17u, 29u)));

class StorageEquivalence : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(StorageEquivalence, LargeCacheMatchesIdealStore)
{
    // With enough entries and the spill policy, the hardware cache
    // must answer every query exactly like the unbounded reference.
    Rng rng(GetParam());
    TaintStorage hw(params(512));
    IdealRangeStore ideal;

    for (int step = 0; step < 2000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(3));
        Addr start = 0x1000 + static_cast<Addr>(rng.below(512));
        Addr len = 1 + static_cast<Addr>(rng.below(16));
        AddrRange r = AddrRange::fromSize(start, len);
        switch (rng.below(4)) {
          case 0:
          case 1:
            hw.insert(pid, r);
            ideal.insert(pid, r);
            break;
          case 2:
            hw.remove(pid, r);
            ideal.remove(pid, r);
            break;
          default:
            ASSERT_EQ(hw.query(pid, r), ideal.query(pid, r))
                << "step " << step;
            break;
        }
        ASSERT_EQ(hw.bytes(), ideal.bytes()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageEquivalence,
                         ::testing::Values(11, 22, 33, 44));

TEST(WordStorage, OvertaintsToBlockGranularity)
{
    WordTaintStorage st(2); // 4-byte blocks
    st.insert(1, AddrRange(0x102, 0x102)); // one byte
    // The whole containing block reads as tainted.
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_TRUE(st.query(1, AddrRange(0x103, 0x103)));
    EXPECT_FALSE(st.query(1, AddrRange(0x104, 0x104)));
    EXPECT_EQ(st.bytes(), 4u);
}

TEST(WordStorage, SpansMultipleBlocks)
{
    WordTaintStorage st(2);
    st.insert(1, AddrRange(0x102, 0x109));
    EXPECT_EQ(st.rangeCount(), 3u); // blocks 0x100, 0x104, 0x108
    EXPECT_EQ(st.bytes(), 12u);
    st.remove(1, AddrRange(0x104, 0x107));
    EXPECT_FALSE(st.query(1, AddrRange(0x105, 0x105)));
    EXPECT_TRUE(st.query(1, AddrRange(0x108, 0x108)));
}

TEST(WordStorage, PidSeparation)
{
    WordTaintStorage st(2);
    st.insert(1, AddrRange(0x100, 0x103));
    EXPECT_FALSE(st.query(2, AddrRange(0x100, 0x103)));
}

TEST(WordStorage, CoarseGranularityOvertaintsMore)
{
    WordTaintStorage fine(2);
    WordTaintStorage coarse(6); // 64-byte blocks
    fine.insert(1, AddrRange(0x100, 0x101));
    coarse.insert(1, AddrRange(0x100, 0x101));
    EXPECT_EQ(fine.bytes(), 4u);
    EXPECT_EQ(coarse.bytes(), 64u);
    EXPECT_FALSE(fine.query(1, AddrRange(0x13f, 0x13f)));
    EXPECT_TRUE(coarse.query(1, AddrRange(0x13f, 0x13f)));
}

TEST(WordStorage, NeverFalseNegativeVsIdeal)
{
    // Word granularity may overtaint but must never miss real taint.
    Rng rng(99);
    WordTaintStorage word(2);
    IdealRangeStore ideal;
    for (int step = 0; step < 1500; ++step) {
        Addr start = 0x1000 + static_cast<Addr>(rng.below(256));
        Addr len = 1 + static_cast<Addr>(rng.below(8));
        AddrRange r = AddrRange::fromSize(start, len);
        if (rng.below(2)) {
            word.insert(1, r);
            ideal.insert(1, r);
        } else {
            bool ideal_hit = ideal.query(1, r);
            if (ideal_hit) {
                ASSERT_TRUE(word.query(1, r)) << "step " << step;
            }
        }
    }
}
