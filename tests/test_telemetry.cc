/**
 * @file
 * Telemetry subsystem tests: registry semantics (counter/gauge/
 * histogram), bucket boundary placement, snapshot determinism, span
 * nesting in the Chrome export, the JSONL writer, and the
 * warnings_suppressed_total bridge from support/logging.
 *
 * The file compiles and passes in both PIFT_TELEMETRY modes: with
 * OFF, every instrument is an inline stub that reads zero, and the
 * assertions that require real collection are compiled out or
 * branch on compiledIn().
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

using namespace pift;
namespace tel = pift::telemetry;

namespace
{

/** Fresh registry + tracer for every test. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        tel::setEnabled(true);
        tel::resetAll();
        tel::tracer().clear();
    }

    void
    TearDown() override
    {
        tel::setEnabled(true);
        tel::resetAll();
        tel::tracer().clear();
    }
};

/** Number of occurrences of @p needle in @p hay. */
size_t
countOf(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST_F(TelemetryTest, CounterAccumulatesAndResets)
{
    auto &c = tel::counter("test.counter.basic");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    if (tel::compiledIn())
        EXPECT_EQ(c.value(), 42u);
    else
        EXPECT_EQ(c.value(), 0u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, CounterIsSharedByName)
{
    tel::counter("test.counter.shared").inc(3);
    auto &again = tel::counter("test.counter.shared");
    if (tel::compiledIn())
        EXPECT_EQ(again.value(), 3u);
}

TEST_F(TelemetryTest, GaugeTracksValueAndPeak)
{
    auto &g = tel::gauge("test.gauge.basic");
    g.set(10);
    g.add(5);   // 15, new peak
    g.add(-12); // 3, peak stays 15
    if (tel::compiledIn()) {
        EXPECT_EQ(g.value(), 3);
        EXPECT_EQ(g.peak(), 15);
    } else {
        EXPECT_EQ(g.value(), 0);
        EXPECT_EQ(g.peak(), 0);
    }
}

TEST_F(TelemetryTest, RuntimeDisableGatesUpdates)
{
    auto &c = tel::counter("test.counter.gated");
    c.inc();
    tel::setEnabled(false);
    c.inc(100);
    tel::setEnabled(true);
    c.inc();
    if (tel::compiledIn())
        EXPECT_EQ(c.value(), 2u);
}

#if defined(PIFT_TELEMETRY_ENABLED)

TEST_F(TelemetryTest, HistogramBucketBoundariesAreInclusive)
{
    auto &h = tel::histogram("test.hist.bounds", {1, 2, 4});
    // Bucket semantics: bucket i counts v <= bounds[i] (and
    // > bounds[i-1]); one overflow bucket past the last bound.
    h.observe(0); // bucket 0
    h.observe(1); // bucket 0 (inclusive upper bound)
    h.observe(2); // bucket 1
    h.observe(3); // bucket 2
    h.observe(4); // bucket 2
    h.observe(5); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow bucket
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 15u);
}

TEST_F(TelemetryTest, HistogramSnapshotMarksOverflow)
{
    auto &h = tel::histogram("test.hist.snap", {10});
    h.observe(7);
    h.observe(700);
    for (const auto &s : tel::snapshot()) {
        if (s.name != "test.hist.snap")
            continue;
        ASSERT_EQ(s.buckets.size(), 2u);
        EXPECT_EQ(s.buckets[0].le, 10u);
        EXPECT_EQ(s.buckets[0].count, 1u);
        EXPECT_EQ(s.buckets[1].le, tel::bucket_overflow);
        EXPECT_EQ(s.buckets[1].count, 1u);
        EXPECT_EQ(s.count, 2u);
        return;
    }
    FAIL() << "instrument missing from snapshot";
}

TEST_F(TelemetryTest, HistogramQuantileInterpolatesWithinBuckets)
{
    // Pure snapshot arithmetic — runs in both telemetry modes.
    std::vector<tel::BucketSnap> buckets = {
        {10, 10}, {20, 10}, {tel::bucket_overflow, 0}};
    // Rank q*20 inside [0,10]: interpolate from lower edge 0.
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 20, 0.25), 5.0);
    // Bucket edge is exact.
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 20, 0.5), 10.0);
    // Rank 15 of 20 is halfway through (10,20].
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 20, 0.75),
                     15.0);
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 20, 1.0), 20.0);
}

TEST_F(TelemetryTest, HistogramQuantileClampsOverflowAndEmpty)
{
    std::vector<tel::BucketSnap> buckets = {
        {10, 1}, {tel::bucket_overflow, 9}};
    // Ranks landing in the overflow bucket clamp to the last finite
    // bound: there is no upper edge to interpolate toward.
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 10, 0.99),
                     10.0);
    EXPECT_DOUBLE_EQ(tel::histogramQuantile({}, 0, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(tel::histogramQuantile(buckets, 0, 0.5), 0.0);
}

TEST_F(TelemetryTest, SnapshotCarriesQuantiles)
{
    if (!tel::compiledIn())
        GTEST_SKIP() << "PIFT_TELEMETRY=OFF";
    auto &h = tel::histogram("test.hist.quant", {10, 100});
    for (int i = 0; i < 10; ++i)
        h.observe(5);
    for (const auto &s : tel::snapshot()) {
        if (s.name != "test.hist.quant")
            continue;
        // Everything in (0,10]: quantiles interpolate inside it.
        EXPECT_DOUBLE_EQ(s.p50, 5.0);
        EXPECT_DOUBLE_EQ(s.p95, 9.5);
        EXPECT_DOUBLE_EQ(s.p99, 9.9);
        return;
    }
    FAIL() << "instrument missing from snapshot";
}

TEST_F(TelemetryTest, SnapshotIsSortedAndDeterministic)
{
    tel::counter("test.z.last").inc();
    tel::counter("test.a.first").inc(2);
    tel::gauge("test.m.middle").set(7);

    auto snaps = tel::snapshot();
    ASSERT_GE(snaps.size(), 3u);
    for (size_t i = 1; i < snaps.size(); ++i)
        EXPECT_LT(snaps[i - 1].name, snaps[i].name);

    // Two snapshots of an unchanged registry are identical.
    auto again = tel::snapshot();
    ASSERT_EQ(snaps.size(), again.size());
    for (size_t i = 0; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].name, again[i].name);
        EXPECT_EQ(snaps[i].value, again[i].value);
        EXPECT_EQ(snaps[i].gauge_value, again[i].gauge_value);
        EXPECT_EQ(snaps[i].count, again[i].count);
    }
}

TEST_F(TelemetryTest, ExponentialBoundsStrictlyIncrease)
{
    auto b = tel::exponentialBounds(1, 1.1, 12);
    ASSERT_EQ(b.size(), 12u);
    EXPECT_EQ(b.front(), 1u);
    for (size_t i = 1; i < b.size(); ++i)
        EXPECT_LT(b[i - 1], b[i]);
}

TEST_F(TelemetryTest, SpanNestingSurvivesChromeExport)
{
    {
        tel::Span outer("outer", "test");
        {
            tel::Span inner("inner", "test");
        }
        tel::tracer().instant("marker", "test");
    }
    auto events = tel::tracer().events();
    ASSERT_EQ(events.size(), 5u);
    using Ph = tel::TraceEvent::Phase;
    EXPECT_EQ(events[0].ph, Ph::Begin);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].ph, Ph::Begin);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].ph, Ph::End);
    EXPECT_EQ(events[3].ph, Ph::Instant);
    EXPECT_EQ(events[4].ph, Ph::End);
    EXPECT_EQ(tel::tracer().depth(), 0);

    std::ostringstream os;
    tel::writeChromeTrace(os, events);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // B...E pairs survive: two "ph":"B", two "ph":"E", one "ph":"i".
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 2u);
    EXPECT_EQ(countOf(json, "\"ph\":\"i\""), 1u);
    // Stream order preserved: outer begins before inner.
    EXPECT_LT(json.find("\"name\":\"outer\""),
              json.find("\"name\":\"inner\""));
}

TEST_F(TelemetryTest, TracerBoundsBufferAndCountsDrops)
{
    auto &tr = tel::tracer();
    size_t old_cap = tr.capacity();
    tr.setCapacity(4);
    for (int i = 0; i < 8; ++i)
        tr.instant("burst", "test");
    EXPECT_LE(tr.events().size(), 4u);
    EXPECT_GE(tr.dropped(), 4u);
    // A dropped Begin suppresses its End, keeping the stream nested.
    EXPECT_FALSE(tr.begin("late", "test"));
    EXPECT_EQ(tr.depth(), 0);
    tr.setCapacity(old_cap);
}

TEST_F(TelemetryTest, RegistrySampleAppearsAsCounterEvents)
{
    tel::counter("test.sampled.counter").inc(9);
    tel::sampleRegistryToTracer();
    bool found = false;
    for (const auto &ev : tel::tracer().events()) {
        if (ev.ph == tel::TraceEvent::Phase::Counter &&
            ev.name == "test.sampled.counter") {
            EXPECT_DOUBLE_EQ(ev.value, 9.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, JsonlEmitsOneObjectPerLine)
{
    tel::tracer().instant("one", "test");
    tel::tracer().counterSample("two", 2.5);
    std::ostringstream os;
    tel::writeJsonl(os, tel::tracer().events());
    std::string out = os.str();
    EXPECT_EQ(countOf(out, "\n"), 2u);
    EXPECT_NE(out.find("\"name\":\"one\""), std::string::npos);
    EXPECT_NE(out.find("\"value\":2.5"), std::string::npos);
}

TEST_F(TelemetryTest, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(tel::jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(tel::jsonEscape("plain"), "plain");
}

TEST_F(TelemetryTest, SuppressedWarningsFlowIntoTelemetry)
{
    resetWarnRateLimits();
    auto &suppressed =
        tel::counter("support.warnings_suppressed_total");
    uint64_t before = suppressed.value();
    // Limit 0 => every call is suppressed (and silent), each one
    // feeding the telemetry counter through noteSuppressedWarn().
    for (int i = 0; i < 5; ++i)
        pift_warn_limited(0, "telemetry test warning %d", i);
    EXPECT_EQ(suppressed.value(), before + 5);
    resetWarnRateLimits();
}

#else // !PIFT_TELEMETRY_ENABLED

TEST_F(TelemetryTest, CompiledOutStubsAreInert)
{
    EXPECT_FALSE(tel::compiledIn());
    EXPECT_FALSE(tel::enabled());
    tel::counter("test.off.counter").inc(100);
    EXPECT_EQ(tel::counter("test.off.counter").value(), 0u);
    {
        tel::Span span("off", "test");
    }
    EXPECT_TRUE(tel::tracer().events().empty());
    EXPECT_TRUE(tel::snapshot().empty());

    // Exporters still produce loadable (empty) documents.
    std::ostringstream os;
    tel::writeChromeTrace(os, {});
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

#endif // PIFT_TELEMETRY_ENABLED
