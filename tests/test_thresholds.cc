/**
 * @file
 * Golden detection-threshold regression table: the minimal NI (at
 * NT = 3) for every leaky DroidBench app and every malware analog.
 * These thresholds ARE the reproduction's Figure 11 — any template,
 * runtime or framework change that shifts them shows up here first,
 * with the app name attached.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"

using namespace pift;

namespace
{

/** name -> minimal NI at NT=3 (26 = not detected within NI <= 25). */
const std::map<std::string, unsigned> golden_min_ni = {
    // Direct flows and reference indirections: any window.
    {"DirectLeak_Sms_IMEI", 1},
    {"DirectLeak_Http_IMEI", 1},
    {"DirectLeak_Log_Phone", 1},
    {"DirectLeak_Sms_SIM", 1},
    {"Field_RefInField_Sms", 1},
    {"Static_RefInStatic_Http", 1},
    {"Array_RefInObjectArray_Sms", 1},
    {"List_PickSensitive_Log", 1},
    {"Intent_RefExtra_Sms", 1},
    {"Callback_RefInRunnable_Sms", 1},
    {"Override_DynamicDispatch_Sms", 1},
    {"Exception_RefInPayload_Sms", 1},
    {"Aliasing_TwoRefs_Sms", 1},
    // Character copies (the distance-1 Figure 1 loop).
    {"PaperExample_ConcatChain_Sms", 1},
    {"Concat_Prefix_Http", 1},
    {"Concat_Suffix_Log", 1},
    {"StringBuilder_Single_Sms", 1},
    {"StringBuilder_Multi_Http", 1},
    {"Substring_Sms", 1},
    {"ToCharArray_Http", 1},
    {"ArrayCopy_Sms", 1},
    {"Loop_ChunkedConcat_Sms", 1},
    {"TwoSources_Sms", 1},
    {"SplitJoin_Http", 1},
    {"StringBuilder_Grow_Sms", 1},
    {"LocationString_Http", 1},
    // Per-character bytecode chains.
    {"CharLoop_Rebuild_Sms", 3},
    {"CharLoop_ValueOf_Http", 3},
    {"Parse_Reformat_Log", 3},
    {"StaticChar_Leak_Http", 3},
    {"IntArray_Chars_Sms", 3},
    {"Xor_Obfuscate_Log", 4},
    {"Div_Obfuscate_Http", 4},
    {"FieldChar_Leak_Sms", 5},
    {"Arith_PlusOne_Sms", 5},
    {"SumChars_Sms", 5},
    {"IntToChar_Leak_Http", 6},
    // ABI-helper flows: the Figure 11 thresholds.
    {"GPS_Latitude_Sms", 10},
    {"GPS_FloatAvg_Sms", 10},
    // Implicit flows (Section 4.2).
    {"ImplicitFlow1_Sms", 11},
    {"ImplicitFlow2_Http", 17},
};

const std::map<std::string, unsigned> golden_malware_min_ni = {
    {"malware_lgroot", 1},      {"malware_rootsmart", 1},
    {"malware_basebridge", 1},  {"malware_geinimi", 1},
    {"malware_overclock1", 1},  {"malware_overclock2", 1},
    {"malware_overclock3", 1},
};

} // namespace

TEST(Thresholds, GoldenTableCoversEveryLeakyApp)
{
    unsigned leaky = 0;
    for (const auto &entry : droidbench::droidBenchApps())
        leaky += entry.leaks ? 1 : 0;
    EXPECT_EQ(golden_min_ni.size(), leaky);
}

TEST(Thresholds, DroidBenchMinimalWindowsMatchGolden)
{
    for (const auto &entry : droidbench::droidBenchApps()) {
        if (!entry.leaks)
            continue;
        auto it = golden_min_ni.find(entry.name);
        ASSERT_NE(it, golden_min_ni.end()) << entry.name;
        auto run = droidbench::runApp(entry);
        EXPECT_EQ(analysis::minimalNi(run.trace, 3, 25), it->second)
            << entry.name;
    }
}

TEST(Thresholds, BenignAppsNeverDetected)
{
    for (const auto &entry : droidbench::droidBenchApps()) {
        if (entry.leaks)
            continue;
        auto run = droidbench::runApp(entry);
        EXPECT_EQ(analysis::minimalNi(run.trace, 3, 25), 26u)
            << entry.name;
    }
}

TEST(Thresholds, MalwareMinimalWindowsMatchGolden)
{
    for (const auto &entry : droidbench::malwareApps()) {
        auto it = golden_malware_min_ni.find(entry.name);
        ASSERT_NE(it, golden_malware_min_ni.end()) << entry.name;
        auto run = droidbench::runApp(entry);
        EXPECT_EQ(analysis::minimalNi(run.trace, 2, 25), it->second)
            << entry.name;
    }
}
