/**
 * @file
 * Unit tests for the event stream: hub fan-out, capture, replay
 * interleaving, and binary/text serialization round trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"
#include "sim/trace_io.hh"

using namespace pift;
using namespace pift::sim;

namespace
{

TraceRecord
makeRecord(SeqNum seq, MemKind kind = MemKind::None)
{
    TraceRecord r;
    r.seq = seq;
    r.local_seq = seq;
    r.pid = 1;
    r.pc = 0x8000 + static_cast<Addr>(4 * seq);
    r.op = kind == MemKind::Load ? isa::Op::Ldr
        : kind == MemKind::Store ? isa::Op::Str : isa::Op::Nop;
    r.mem_kind = kind;
    if (kind != MemKind::None) {
        r.mem_start = 0x1000 + static_cast<Addr>(seq);
        r.mem_end = r.mem_start + 3;
    }
    return r;
}

/** Sink that records the order of everything it sees. */
struct OrderSink : TraceSink
{
    void
    onRecord(const TraceRecord &rec) override
    {
        log.push_back("R" + std::to_string(rec.seq));
    }

    void
    onControl(const ControlEvent &ev) override
    {
        log.push_back("C" + std::to_string(ev.id));
    }

    std::vector<std::string> log;
};

} // namespace

TEST(EventHub, FanOutToMultipleSinks)
{
    EventHub hub;
    TraceBuffer a, b;
    hub.addSink(&a);
    hub.addSink(&b);
    hub.publish(makeRecord(0));
    EXPECT_EQ(a.trace().records.size(), 1u);
    EXPECT_EQ(b.trace().records.size(), 1u);
    hub.removeSink(&b);
    hub.publish(makeRecord(1));
    EXPECT_EQ(a.trace().records.size(), 2u);
    EXPECT_EQ(b.trace().records.size(), 1u);
}

TEST(EventHub, RecordCountAssignsControlPositions)
{
    EventHub hub;
    TraceBuffer buf;
    hub.addSink(&buf);
    hub.publish(makeRecord(0));
    ControlEvent ev;
    ev.seq = hub.recordCount();
    ev.kind = ControlKind::RegisterSource;
    ev.id = 7;
    hub.publish(ev);
    hub.publish(makeRecord(1));
    EXPECT_EQ(buf.trace().controls[0].seq, 1u);
}

TEST(Replay, PreservesInterleaving)
{
    Trace trace;
    trace.records.push_back(makeRecord(0));
    trace.records.push_back(makeRecord(1));
    trace.records.push_back(makeRecord(2));
    ControlEvent before_all;
    before_all.seq = 0;
    before_all.id = 100;
    ControlEvent middle;
    middle.seq = 2;
    middle.id = 200;
    ControlEvent after_all;
    after_all.seq = 3;
    after_all.id = 300;
    trace.controls = {before_all, middle, after_all};

    OrderSink sink;
    replay(trace, sink);
    std::vector<std::string> expected{"C100", "R0", "R1", "C200", "R2",
                                      "C300"};
    EXPECT_EQ(sink.log, expected);
}

TEST(Replay, LiveAndReplayedOrdersMatch)
{
    // Publish a live stream through a hub while capturing it, then
    // replay the capture: a second order sink must see the same log.
    EventHub hub;
    TraceBuffer buf;
    OrderSink live;
    hub.addSink(&buf);
    hub.addSink(&live);

    for (SeqNum i = 0; i < 5; ++i) {
        if (i == 2 || i == 4) {
            ControlEvent ev;
            ev.seq = hub.recordCount();
            ev.id = static_cast<uint32_t>(i);
            hub.publish(ev);
        }
        hub.publish(makeRecord(i));
    }

    OrderSink replayed;
    replay(buf.trace(), replayed);
    EXPECT_EQ(replayed.log, live.log);
}

TEST(TraceIo, BinaryRoundTrip)
{
    Trace trace;
    for (SeqNum i = 0; i < 100; ++i) {
        auto kind = i % 3 == 0 ? MemKind::Load
            : i % 3 == 1 ? MemKind::Store : MemKind::None;
        TraceRecord r = makeRecord(i, kind);
        r.dst = 3;
        r.src = {4, 5, no_reg};
        r.aux = static_cast<uint32_t>(i);
        trace.records.push_back(r);
    }
    ControlEvent ev;
    ev.seq = 50;
    ev.kind = ControlKind::CheckSink;
    ev.pid = 9;
    ev.start = 0xaaaa;
    ev.end = 0xbbbb;
    ev.id = 42;
    trace.controls.push_back(ev);

    std::stringstream ss;
    writeTrace(ss, trace);
    Trace loaded;
    ASSERT_TRUE(readTrace(ss, loaded));

    ASSERT_EQ(loaded.records.size(), trace.records.size());
    ASSERT_EQ(loaded.controls.size(), 1u);
    for (size_t i = 0; i < trace.records.size(); ++i) {
        const auto &a = trace.records[i];
        const auto &b = loaded.records[i];
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.src, b.src);
        EXPECT_EQ(a.mem_kind, b.mem_kind);
        EXPECT_EQ(a.mem_start, b.mem_start);
        EXPECT_EQ(a.mem_end, b.mem_end);
        EXPECT_EQ(a.aux, b.aux);
    }
    EXPECT_EQ(loaded.controls[0].kind, ControlKind::CheckSink);
    EXPECT_EQ(loaded.controls[0].start, 0xaaaau);
    EXPECT_EQ(loaded.controls[0].id, 42u);
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream ss;
    ss << "this is not a trace file";
    Trace t;
    EXPECT_FALSE(readTrace(ss, t));
}

TEST(TraceIo, RejectsTruncation)
{
    Trace trace;
    trace.records.push_back(makeRecord(0));
    trace.records.push_back(makeRecord(1));
    std::stringstream ss;
    writeTrace(ss, trace);
    std::string data = ss.str();
    std::stringstream truncated(data.substr(0, data.size() - 4));
    Trace t;
    EXPECT_FALSE(readTrace(truncated, t));
}

TEST(TraceIo, FileRoundTrip)
{
    Trace trace;
    trace.records.push_back(makeRecord(0, MemKind::Load));
    std::string path = ::testing::TempDir() + "/pift_trace_test.bin";
    ASSERT_TRUE(saveTrace(path, trace).ok());
    Trace loaded;
    ASSERT_TRUE(loadTrace(path, loaded).ok());
    EXPECT_EQ(loaded.records.size(), 1u);
    EXPECT_FALSE(loadTrace(path + ".missing", loaded).ok());
}

TEST(TraceIo, SaveToUnwritablePathIsRecoverable)
{
    Trace trace;
    trace.records.push_back(makeRecord(0));
    auto st = saveTrace("/nonexistent-dir/pift.trace", trace);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("cannot open"), std::string::npos);
}

TEST(TraceIo, TolerantReaderSalvagesTruncatedFile)
{
    Trace trace;
    for (SeqNum i = 0; i < 4; ++i)
        trace.records.push_back(makeRecord(i, MemKind::Load));
    std::stringstream ss;
    writeTrace(ss, trace);
    std::string data = ss.str();
    // Chop the last record in half: three full records survive.
    std::stringstream truncated(data.substr(0, data.size() - 10));

    Trace salvaged;
    auto result = readTraceTolerant(truncated, salvaged);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().truncated);
    EXPECT_TRUE(result.value().lossy());
    EXPECT_EQ(result.value().records_expected, 4u);
    EXPECT_EQ(result.value().records_read, 3u);
    EXPECT_EQ(salvaged.records.size(), 3u);
    EXPECT_EQ(salvaged.records[2].seq, 2u);
}

TEST(TraceIo, TolerantReaderSkipsCorruptRecords)
{
    Trace trace;
    for (SeqNum i = 0; i < 3; ++i)
        trace.records.push_back(makeRecord(i, MemKind::Store));
    std::stringstream ss;
    writeTrace(ss, trace);
    std::string data = ss.str();
    // Stomp the middle record's opcode byte with garbage. The record
    // layout starts after the 24-byte header; op is at offset 24
    // within a record.
    size_t header = 24;
    size_t rec_size = (data.size() - header) / 3;
    data[header + rec_size + 24] = static_cast<char>(0xee);

    std::stringstream corrupt(data);
    Trace salvaged;
    auto result = readTraceTolerant(corrupt, salvaged);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().truncated);
    EXPECT_EQ(result.value().records_bad, 1u);
    EXPECT_EQ(result.value().records_read, 2u);
    ASSERT_EQ(salvaged.records.size(), 2u);
    // The reader resynchronized: the record after the bad one is
    // intact.
    EXPECT_EQ(salvaged.records[1].seq, 2u);
}

TEST(TraceIo, TolerantReaderRejectsGarbageHeader)
{
    std::stringstream ss;
    ss << "not a trace at all, sorry";
    Trace t;
    auto result = readTraceTolerant(ss, t);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("magic"),
              std::string::npos);
}

TEST(TraceIo, TextDumpMentionsEvents)
{
    Trace trace;
    trace.records.push_back(makeRecord(0, MemKind::Load));
    ControlEvent ev;
    ev.seq = 0;
    ev.kind = ControlKind::RegisterSource;
    ev.start = 0x4000;
    ev.end = 0x4010;
    trace.controls.push_back(ev);

    std::ostringstream os;
    dumpTraceText(os, trace);
    std::string text = os.str();
    EXPECT_NE(text.find("source"), std::string::npos);
    EXPECT_NE(text.find("ldr"), std::string::npos);
    EXPECT_NE(text.find("0x00001000"), std::string::npos);
}
