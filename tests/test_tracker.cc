/**
 * @file
 * Unit tests for Algorithm 1 (PiftTracker): window opening/restart,
 * the NT propagation budget, untainting, the exact Figure 4 scenario,
 * per-process isolation, control events and configuration.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"

using namespace pift;
using core::IdealRangeStore;
using core::PiftParams;
using core::PiftTracker;
using taint::AddrRange;

namespace
{

/** Builder for synthetic per-process event streams. */
class Stream
{
  public:
    explicit Stream(PiftTracker &tracker) : tr(tracker) {}

    /** Advance k non-memory instructions. */
    Stream &
    step(unsigned k = 1)
    {
        for (unsigned i = 0; i < k; ++i) {
            sim::TraceRecord r;
            r.pid = pid;
            r.local_seq = next(pid);
            r.op = isa::Op::Add;
            tr.onRecord(r);
        }
        return *this;
    }

    Stream &
    load(Addr start, Addr end)
    {
        sim::TraceRecord r;
        r.pid = pid;
        r.local_seq = next(pid);
        r.op = isa::Op::Ldr;
        r.mem_kind = sim::MemKind::Load;
        r.mem_start = start;
        r.mem_end = end;
        tr.onRecord(r);
        return *this;
    }

    Stream &
    store(Addr start, Addr end)
    {
        sim::TraceRecord r;
        r.pid = pid;
        r.local_seq = next(pid);
        r.op = isa::Op::Str;
        r.mem_kind = sim::MemKind::Store;
        r.mem_start = start;
        r.mem_end = end;
        tr.onRecord(r);
        return *this;
    }

    Stream &
    source(Addr start, Addr end)
    {
        sim::ControlEvent ev;
        ev.pid = pid;
        ev.kind = sim::ControlKind::RegisterSource;
        ev.start = start;
        ev.end = end;
        tr.onControl(ev);
        return *this;
    }

    bool
    check(Addr start, Addr end, uint32_t id = 0)
    {
        sim::ControlEvent ev;
        ev.pid = pid;
        ev.kind = sim::ControlKind::CheckSink;
        ev.start = start;
        ev.end = end;
        ev.id = id;
        tr.onControl(ev);
        return tr.sinkResults().back().tainted;
    }

    Stream &
    proc(ProcId p)
    {
        pid = p;
        return *this;
    }

  private:
    SeqNum
    next(ProcId p)
    {
        return counters[p]++;
    }

    PiftTracker &tr;
    ProcId pid = 1;
    std::map<ProcId, SeqNum> counters;
};

struct Fixture
{
    explicit Fixture(PiftParams params = {})
        : tracker(params, store), s(tracker)
    {}

    IdealRangeStore store;
    PiftTracker tracker;
    Stream s;
};

} // namespace

TEST(Tracker, StoreInsideWindowIsTainted)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);   // tainted load -> window opens
    f.s.step(2);
    f.s.store(0x2000, 0x2003);  // within NI=5
    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2003)));
}

TEST(Tracker, StoreOutsideWindowIsNotTainted)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.step(6);                // window (NI=5) expired
    f.s.store(0x2000, 0x2003);
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));
}

TEST(Tracker, StoreExactlyAtWindowEdge)
{
    // k <= LTLT + NI is inclusive.
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);   // LTLT = k
    f.s.step(4);
    f.s.store(0x2000, 0x2003);  // at k + 5 exactly
    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2003)));
}

TEST(Tracker, NonTaintedLoadDoesNotOpenWindow)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x9000, 0x9003);   // clean load
    f.s.store(0x2000, 0x2003);
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));
}

TEST(Tracker, PartialOverlapOpensWindow)
{
    // The paper's overlap condition is any intersection.
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x1007);
    f.s.load(0x1006, 0x1009);   // overlaps the last two bytes
    f.s.store(0x2000, 0x2001);
    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2001)));
}

TEST(Tracker, PropagationBudgetNT)
{
    Fixture f({10, 2, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);  // NT 1
    f.s.store(0x3000, 0x3003);  // NT 2
    f.s.store(0x4000, 0x4003);  // budget exhausted -> untaint path
    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_TRUE(f.store.query(1, AddrRange(0x3000, 0x3003)));
    EXPECT_FALSE(f.store.query(1, AddrRange(0x4000, 0x4003)));
}

TEST(Tracker, TaintedLoadRestartsWindowAndBudget)
{
    Fixture f({5, 1, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);  // consumes the only propagation
    f.s.load(0x1004, 0x1007);   // restart: budget back to 0 used
    f.s.store(0x3000, 0x3003);  // tainted again
    EXPECT_TRUE(f.store.query(1, AddrRange(0x3000, 0x3003)));
}

TEST(Tracker, NoRestartVariantKeepsOriginalWindow)
{
    PiftParams p{5, 3, true};
    p.restart = false;
    Fixture f(p);
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);   // opens at k
    f.s.step(3);
    f.s.load(0x1004, 0x1007);   // would restart under Algorithm 1
    f.s.step(3);                // now k+8: outside original window
    f.s.store(0x2000, 0x2003);
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));

    // Under default (restart) semantics the same stream taints.
    Fixture g({5, 3, true});
    g.s.source(0x1000, 0x100f);
    g.s.load(0x1000, 0x1003);
    g.s.step(3);
    g.s.load(0x1004, 0x1007);
    g.s.step(3);
    g.s.store(0x2000, 0x2003);
    EXPECT_TRUE(g.store.query(1, AddrRange(0x2000, 0x2003)));
}

TEST(Tracker, UntaintingRemovesStaleTaint)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);  // tainted
    f.s.step(10);               // window closes
    f.s.store(0x2000, 0x2003);  // overwrite -> untaint
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_EQ(f.tracker.stats().untaint_ops, 1u);
}

TEST(Tracker, UntaintingDisabledKeepsTaint)
{
    Fixture f({5, 3, false});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);
    f.s.step(10);
    f.s.store(0x2000, 0x2003);
    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_EQ(f.tracker.stats().untaint_ops, 0u);
}

TEST(Tracker, Figure4Scenario)
{
    // The exact example of Figure 4: NT = 2, a tainted load, four
    // stores at increasing distances, a non-tainted load, one more
    // store. NI chosen so the 4th store falls outside the window.
    Fixture f({8, 2, true});
    f.s.source(0x1000, 0x100f);

    f.s.load(0x1000, 0x1001);    // [k] tainted load, TW starts
    f.s.step(1);
    f.s.store(0x2000, 0x2003);   // [k+2] taint (1st propagation)
    f.s.step(1);
    f.s.store(0x3000, 0x3007);   // [k+4] taint (2nd propagation)
    f.s.step(1);
    f.s.store(0x4000, 0x4003);   // [k+6] in window but NT exhausted
    f.s.step(3);
    f.s.store(0x5000, 0x5001);   // [k+10] outside TW -> untaint
    f.s.load(0x9000, 0x9001);    // non-tainted load: no new TW
    f.s.store(0x6000, 0x6003);   // still outside -> untaint

    EXPECT_TRUE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_TRUE(f.store.query(1, AddrRange(0x3000, 0x3007)));
    EXPECT_FALSE(f.store.query(1, AddrRange(0x4000, 0x4003)));
    EXPECT_FALSE(f.store.query(1, AddrRange(0x5000, 0x5001)));
    EXPECT_FALSE(f.store.query(1, AddrRange(0x6000, 0x6003)));
    EXPECT_EQ(f.tracker.stats().tainted_loads, 1u);
    EXPECT_EQ(f.tracker.stats().taint_ops, 3u); // source + 2 stores
}

TEST(Tracker, ChainOfLoadStoreHops)
{
    // store -> later load of the tainted copy -> further store: the
    // chain of load-store segments the paper describes in Section 1.
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1001);
    f.s.store(0x2000, 0x2001);
    f.s.step(20);
    f.s.load(0x2000, 0x2001);   // copy is tainted: new window
    f.s.store(0x3000, 0x3001);
    f.s.step(20);
    EXPECT_TRUE(f.s.check(0x3000, 0x3001));
}

TEST(Tracker, ProcessIsolation)
{
    Fixture f({5, 3, true});
    f.s.proc(1).source(0x1000, 0x100f);
    // Process 2 loads the same physical range: its taint set is
    // separate (entries are PID-tagged, Figure 6).
    f.s.proc(2).load(0x1000, 0x1003);
    f.s.proc(2).store(0x2000, 0x2003);
    EXPECT_FALSE(f.store.query(2, AddrRange(0x2000, 0x2003)));

    // Process 1's window is unaffected by process 2's instructions.
    f.s.proc(1).load(0x1000, 0x1003);
    f.s.proc(2).step(50);
    f.s.proc(1).store(0x3000, 0x3003);
    EXPECT_TRUE(f.store.query(1, AddrRange(0x3000, 0x3003)));
}

TEST(Tracker, SinkResultsRecordEverything)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    EXPECT_TRUE(f.s.check(0x1004, 0x1005, 7));
    EXPECT_FALSE(f.s.check(0x9000, 0x9001, 8));
    ASSERT_EQ(f.tracker.sinkResults().size(), 2u);
    EXPECT_EQ(f.tracker.sinkResults()[0].sink_id, 7u);
    EXPECT_TRUE(f.tracker.sinkResults()[0].tainted);
    EXPECT_EQ(f.tracker.sinkResults()[1].sink_id, 8u);
    EXPECT_FALSE(f.tracker.sinkResults()[1].tainted);
    EXPECT_TRUE(f.tracker.anyLeak());
}

TEST(Tracker, ClearAllDropsStateAndWindows)
{
    Fixture f({10, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    sim::ControlEvent ev;
    ev.pid = 1;
    ev.kind = sim::ControlKind::ClearAll;
    f.tracker.onControl(ev);
    f.s.store(0x2000, 0x2003);  // window was discarded
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_FALSE(f.s.check(0x1000, 0x100f));
}

TEST(Tracker, ObserverSeesEffectiveOpsOnly)
{
    Fixture f({5, 3, true});
    unsigned calls = 0;
    f.tracker.setOpObserver(
        [&](SeqNum, const core::TrackerStats &,
            const core::TaintStore &) { ++calls; });
    f.s.source(0x1000, 0x100f);   // effective insert -> 1
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);    // effective insert -> 2
    f.s.step(10);
    f.s.store(0x3000, 0x3003);    // untaint of untainted: no change
    EXPECT_EQ(calls, 2u);
}

TEST(Tracker, MaximaTracked)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x10ff);   // 256 bytes
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2009);    // +10 bytes
    f.s.step(10);
    f.s.store(0x2000, 0x2009);    // untaint back down
    EXPECT_EQ(f.tracker.stats().max_tainted_bytes, 266u);
    EXPECT_EQ(f.tracker.stats().max_ranges, 2u);
    EXPECT_EQ(f.store.bytes(), 256u);
}

TEST(Tracker, SetParamsResetsWindows)
{
    Fixture f({20, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.tracker.setParams({5, 1, true});
    f.s.store(0x2000, 0x2003);  // old window must be gone
    EXPECT_FALSE(f.store.query(1, AddrRange(0x2000, 0x2003)));
    EXPECT_EQ(f.tracker.params().ni, 5u);
}

TEST(Tracker, ResetClearsStatsNotStore)
{
    Fixture f({5, 3, true});
    f.s.source(0x1000, 0x100f);
    f.s.load(0x1000, 0x1003);
    f.s.store(0x2000, 0x2003);
    f.tracker.reset();
    EXPECT_EQ(f.tracker.stats().loads, 0u);
    EXPECT_TRUE(f.tracker.sinkResults().empty());
    // Taint state itself belongs to the store and survives.
    EXPECT_TRUE(f.store.query(1, AddrRange(0x1000, 0x1000)));
}
