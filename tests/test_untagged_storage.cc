/**
 * @file
 * Tests for the untagged (context-switch write-back) taint storage of
 * Section 3.3: swap semantics, cost counters, and exactness (it must
 * never lose taint, unlike the dropping range cache).
 */

#include <gtest/gtest.h>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "core/untagged_storage.hh"
#include "support/rng.hh"

using namespace pift;
using core::IdealRangeStore;
using core::UntaggedTaintStorage;
using taint::AddrRange;

TEST(UntaggedStorage, BasicResidentOperation)
{
    UntaggedTaintStorage st(16);
    EXPECT_TRUE(st.insert(1, AddrRange(0x100, 0x1ff)));
    EXPECT_EQ(st.residentPid(), 1u);
    EXPECT_TRUE(st.query(1, AddrRange(0x180, 0x180)));
    EXPECT_FALSE(st.query(1, AddrRange(0x200, 0x200)));
    EXPECT_EQ(st.stats().context_switches, 1u); // initial load-in
}

TEST(UntaggedStorage, ImplicitContextSwitchOnForeignPid)
{
    UntaggedTaintStorage st(16);
    st.insert(1, AddrRange(0x100, 0x10f));
    st.insert(2, AddrRange(0x300, 0x30f)); // switches to pid 2
    EXPECT_EQ(st.residentPid(), 2u);
    EXPECT_EQ(st.stats().context_switches, 2u);
    EXPECT_EQ(st.stats().entries_written_back, 1u);

    // Switching back reloads pid 1's image; nothing was lost.
    EXPECT_TRUE(st.query(1, AddrRange(0x100, 0x100)));
    EXPECT_EQ(st.residentPid(), 1u);
    // Loads at the three switches: 0 (empty), 0 (empty), then pid
    // 1's single written-back range.
    EXPECT_EQ(st.stats().entries_reloaded, 1u);
}

TEST(UntaggedStorage, NoTagsMeansStrictIsolationViaSwap)
{
    UntaggedTaintStorage st(16);
    st.insert(1, AddrRange(0x100, 0x10f));
    // Same physical range, different process: distinct taint.
    EXPECT_FALSE(st.query(2, AddrRange(0x100, 0x10f)));
    st.insert(2, AddrRange(0x500, 0x50f));
    EXPECT_FALSE(st.query(1, AddrRange(0x500, 0x50f)));
}

TEST(UntaggedStorage, SwitchToSamePidIsFree)
{
    UntaggedTaintStorage st(16);
    st.insert(1, AddrRange(0x100, 0x10f));
    uint64_t switches = st.stats().context_switches;
    st.query(1, AddrRange(0x100, 0x100));
    st.contextSwitch(1);
    EXPECT_EQ(st.stats().context_switches, switches);
}

TEST(UntaggedStorage, OverflowCounted)
{
    UntaggedTaintStorage st(4);
    for (Addr i = 0; i < 8; ++i)
        st.insert(1, AddrRange(0x1000 + i * 0x100,
                               0x1000 + i * 0x100 + 4));
    EXPECT_GT(st.stats().overflow_spills, 0u);
    EXPECT_EQ(st.stats().max_resident, 8u);
    // Exactness is preserved even past capacity (the overflow lives
    // in main memory).
    EXPECT_TRUE(st.query(1, AddrRange(0x1700, 0x1704)));
}

TEST(UntaggedStorage, ClearResets)
{
    UntaggedTaintStorage st(16);
    st.insert(1, AddrRange(0x100, 0x10f));
    st.clear();
    EXPECT_FALSE(st.query(1, AddrRange(0x100, 0x10f)));
    EXPECT_EQ(st.bytes(), 0u);
}

TEST(UntaggedStorage, MatchesIdealUnderRandomMultiProcessStream)
{
    Rng rng(77);
    UntaggedTaintStorage untagged(64);
    IdealRangeStore ideal;
    for (int step = 0; step < 3000; ++step) {
        ProcId pid = 1 + static_cast<ProcId>(rng.below(4));
        Addr start = 0x1000 + static_cast<Addr>(rng.below(512));
        Addr len = 1 + static_cast<Addr>(rng.below(16));
        AddrRange r = AddrRange::fromSize(start, len);
        switch (rng.below(4)) {
          case 0:
          case 1:
            untagged.insert(pid, r);
            ideal.insert(pid, r);
            break;
          case 2:
            untagged.remove(pid, r);
            ideal.remove(pid, r);
            break;
          default:
            ASSERT_EQ(untagged.query(pid, r), ideal.query(pid, r))
                << "step " << step;
            break;
        }
    }
    EXPECT_EQ(untagged.bytes(), ideal.bytes());
    EXPECT_EQ(untagged.rangeCount(), ideal.rangeCount());
    EXPECT_GT(untagged.stats().context_switches, 100u);
}

TEST(UntaggedStorage, WorksAsTrackerBackend)
{
    UntaggedTaintStorage st(4096);
    core::PiftTracker tracker({13, 3, true}, st);

    sim::ControlEvent src;
    src.pid = 7;
    src.kind = sim::ControlKind::RegisterSource;
    src.start = 0x1000;
    src.end = 0x100f;
    tracker.onControl(src);

    sim::TraceRecord load;
    load.pid = 7;
    load.local_seq = 0;
    load.op = isa::Op::Ldr;
    load.mem_kind = sim::MemKind::Load;
    load.mem_start = 0x1000;
    load.mem_end = 0x1003;
    tracker.onRecord(load);

    sim::TraceRecord store;
    store.pid = 7;
    store.local_seq = 1;
    store.op = isa::Op::Str;
    store.mem_kind = sim::MemKind::Store;
    store.mem_start = 0x2000;
    store.mem_end = 0x2003;
    tracker.onRecord(store);

    EXPECT_TRUE(st.query(7, AddrRange(0x2000, 0x2003)));
}
