/**
 * @file
 * VM edge cases: cross-frame exception unwinding, deep recursion with
 * frame reuse, nested native->bytecode re-entry, empty-string paths,
 * and uncaught exceptions.
 */

#include <gtest/gtest.h>

#include <optional>

#include "dalvik/vm.hh"
#include "runtime/library.hh"
#include "sim/cpu.hh"

using namespace pift;
using dalvik::Bc;
using dalvik::MethodBuilder;

namespace
{

struct Device
{
    Device() : cpu(memory, hub), heap(memory)
    {
        hub.addSink(&buffer);
        lib.install(dex);
    }

    void
    boot()
    {
        vm.emplace(cpu, dex, heap);
        vm->boot();
    }

    mem::Memory memory;
    sim::EventHub hub;
    sim::TraceBuffer buffer;
    sim::Cpu cpu;
    runtime::Heap heap;
    dalvik::Dex dex;
    runtime::JavaLib lib;
    std::optional<dalvik::Vm> vm;
};

} // namespace

TEST(VmEdge, ThrowUnwindsAcrossFrames)
{
    Device d;

    // Callee throws; it has no handler.
    MethodBuilder thrower("thrower", 8, 0);
    thrower.newInstance(0,
                        static_cast<uint16_t>(d.lib.exception_cls));
    thrower.const16(1, 99);
    thrower.iput(1, 0, 0);     // payload = 99
    thrower.throwVreg(0);
    thrower.returnVoid();      // unreachable
    auto thrower_id = d.dex.addMethod(thrower.finish());

    // Middle frame: also no handler; must be popped transparently.
    MethodBuilder middle("middle", 8, 0);
    middle.invokeStatic(thrower_id, 0, 0);
    middle.returnVoid();
    auto middle_id = d.dex.addMethod(middle.finish());

    // Outer frame catches and extracts the payload.
    MethodBuilder outer("outer", 8, 0);
    outer.invokeStatic(middle_id, 0, 0);
    outer.const4(0, 0);
    outer.returnValue(0);      // skipped on the throwing path
    outer.catchHere();
    outer.moveException(1);
    outer.iget(2, 1, 0);
    outer.returnValue(2);
    auto outer_id = d.dex.addMethod(outer.finish());

    d.boot();
    EXPECT_EQ(d.vm->execute(outer_id), 99u);
    EXPECT_FALSE(d.vm->uncaughtException());
}

TEST(VmEdge, UncaughtExceptionTerminatesCleanly)
{
    Device d;
    MethodBuilder m("boom", 8, 0);
    m.newInstance(0, static_cast<uint16_t>(d.lib.exception_cls));
    m.throwVreg(0);
    m.returnVoid();
    auto id = d.dex.addMethod(m.finish());
    d.boot();
    d.vm->execute(id);
    EXPECT_TRUE(d.vm->uncaughtException());

    // The VM stays usable afterwards.
    MethodBuilder ok("ok", 4, 0);
    ok.const4(0, 5);
    ok.returnValue(0);
    // Methods must be registered before boot; reuse an existing one:
    EXPECT_EQ(d.vm->execute(id), 0u); // throws again, still clean
    EXPECT_TRUE(d.vm->uncaughtException());
}

TEST(VmEdge, DeepRecursionReusesFrames)
{
    Device d;

    // f(n) = n == 0 ? 0 : f(n-1) + n  (sum via recursion)
    MethodBuilder f("recsum", 8, 1);
    f.ifNez(7, "rec");
    f.const4(0, 0);
    f.returnValue(0);
    f.label("rec");
    f.addIntLit8(4, 7, -1);
    f.invokeStatic(0xffff, 1, 4); // placeholder, patched below
    f.moveResult(0);
    f.binop2addr(Bc::AddInt2Addr, 0, 7);
    f.returnValue(0);
    dalvik::Method method = f.finish();
    // Self-reference: patch the method index into the invoke.
    auto self_id = static_cast<dalvik::MethodId>(d.dex.methodCount());
    for (size_t u = 0; u + 2 < method.code.size(); ++u) {
        if ((method.code[u] & 0xff) ==
            static_cast<uint16_t>(Bc::InvokeStatic) &&
            method.code[u + 1] == 0xffff) {
            method.code[u + 1] = self_id;
        }
    }
    d.dex.addMethod(std::move(method));

    d.boot();
    Addr before = d.heap.used();
    EXPECT_EQ(d.vm->execute(self_id, {100}), 5050u);
    EXPECT_EQ(d.vm->execute(self_id, {100}), 5050u);
    // Frames are LIFO-rewound, not leaked into the heap.
    EXPECT_EQ(d.heap.used(), before);
}

TEST(VmEdge, NativeReentryIntoBytecode)
{
    Device d;

    MethodBuilder cb("callback", 8, 1);
    cb.addIntLit8(0, 7, 5);
    cb.returnValue(0);
    auto cb_id = d.dex.addMethod(cb.finish());

    // A native that calls back into bytecode twice and combines.
    auto native_id = d.dex.addNative(
        "reenter", 1, [cb_id](dalvik::Vm &vm,
                              const dalvik::NativeCall &call) {
            uint32_t x = vm.memory().read32(call.arg_addr(0));
            uint32_t a = vm.execute(cb_id, {x});
            uint32_t b = vm.execute(cb_id, {a});
            vm.setRetval(a + b);
        });

    MethodBuilder m("main", 8, 0);
    m.const4(4, 7);
    m.invokeStatic(native_id, 1, 4);
    m.moveResult(0);
    m.returnValue(0);
    auto id = d.dex.addMethod(m.finish());

    d.boot();
    EXPECT_EQ(d.vm->execute(id), (7u + 5) + (7 + 5 + 5));
}

TEST(VmEdge, EmptyStringOperations)
{
    Device d;
    MethodBuilder m("empties", 14, 0);
    uint16_t empty = d.dex.addString("");
    uint16_t text = d.dex.addString("x");
    m.constString(4, empty);
    m.constString(5, text);
    m.moveObject(0, 4);
    m.moveObject(1, 5);
    m.invokeStatic(d.lib.string_concat, 2, 0);
    m.moveResultObject(6);       // "" + "x" = "x"
    m.moveObject(0, 6);
    m.moveObject(1, 4);
    m.invokeStatic(d.lib.string_concat, 2, 0);
    m.moveResultObject(7);       // "x" + "" = "x"
    m.returnObject(7);
    auto id = d.dex.addMethod(m.finish());
    d.boot();
    EXPECT_EQ(d.vm->readString(d.vm->execute(id)), "x");
}

TEST(VmEdge, ZeroLengthLoops)
{
    Device d;
    // Iterating an empty string's chars must execute zero bodies.
    MethodBuilder m("zl", 14, 0);
    uint16_t empty = d.dex.addString("");
    m.constString(10, empty);
    m.moveObject(4, 10);
    m.invokeStatic(d.lib.string_length, 1, 4);
    m.moveResult(12);
    m.const4(0, 0);
    m.const4(13, 0);
    m.label("loop");
    m.ifGe(13, 12, "done");
    m.addIntLit8(0, 0, 1);
    m.addIntLit8(13, 13, 1);
    m.gotoLabel("loop");
    m.label("done");
    m.returnValue(0);
    auto id = d.dex.addMethod(m.finish());
    d.boot();
    EXPECT_EQ(d.vm->execute(id), 0u);
}

TEST(VmEdge, NegativeLiteralsAndConst4Extremes)
{
    Device d;
    MethodBuilder m("neg", 8, 0);
    m.const4(0, -8);             // minimum nibble
    m.const4(1, 7);              // maximum nibble
    m.binop(Bc::AddInt, 2, 0, 1);
    m.returnValue(2);
    auto id = d.dex.addMethod(m.finish());
    d.boot();
    EXPECT_EQ(d.vm->execute(id), static_cast<uint32_t>(-1));
}

TEST(VmEdge, ExceptionInsideCalleeOfCatchBlock)
{
    Device d;
    // catch { thrower(); } — a throw from inside a catch block's
    // callee unwinds to... nothing here (the catch block already
    // entered); the method has a single catch-all, so it loops back
    // at most once by construction. Verify it terminates with the
    // uncaught flag when rethrowing.
    MethodBuilder inner("inner2", 8, 0);
    inner.newInstance(0,
                      static_cast<uint16_t>(d.lib.exception_cls));
    inner.throwVreg(0);
    inner.returnVoid();
    auto inner_id = d.dex.addMethod(inner.finish());

    MethodBuilder m("catcher2", 8, 0);
    m.invokeStatic(inner_id, 0, 0);
    m.const4(0, 1);
    m.returnValue(0);
    m.catchHere();
    m.const4(0, 2);
    m.returnValue(0);
    auto id = d.dex.addMethod(m.finish());

    d.boot();
    EXPECT_EQ(d.vm->execute(id), 2u);
    EXPECT_FALSE(d.vm->uncaughtException());
}
