/**
 * @file
 * End-to-end smoke tests of the interpreter pipeline: the paper's
 * Figure 7 example (2*key + 456) executed through the real mterp on
 * the simulated CPU, string machinery, and the trace tap.
 */

#include <gtest/gtest.h>

#include "dalvik/method.hh"
#include "dalvik/vm.hh"
#include "mem/memory.hh"
#include "runtime/heap.hh"
#include "runtime/library.hh"
#include "sim/cpu.hh"
#include "sim/trace.hh"

using namespace pift;

namespace
{

/** A full device stack wired for one test. */
struct Device
{
    Device()
        : cpu(memory, hub), heap(memory)
    {
        hub.addSink(&buffer);
        lib.install(dex);
    }

    mem::Memory memory;
    sim::EventHub hub;
    sim::TraceBuffer buffer;
    sim::Cpu cpu;
    runtime::Heap heap;
    dalvik::Dex dex;
    runtime::JavaLib lib;
};

} // namespace

TEST(VmSmoke, Figure7Bar2xPlusY)
{
    Device d;

    // int bar(int x, int y) { return 2*x + y; }  (Figure 7)
    dalvik::MethodBuilder bar("MainActivity.bar", 8, 2);
    bar.const4(3, 2)                              // const/4 v3, #2
        .move(4, 6)                               // move v4, v1(x)
        .binop2addr(dalvik::Bc::MulInt2Addr, 3, 4)
        .move(4, 7)                               // move v4, v2(y)
        .binop2addr(dalvik::Bc::AddInt2Addr, 3, 4)
        .move(0, 3)                               // move v0, v3
        .returnValue(0);
    auto bar_id = d.dex.addMethod(bar.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();

    EXPECT_EQ(vm.execute(bar_id, {123, 456}), 2u * 123 + 456);
    EXPECT_EQ(vm.execute(bar_id, {0, 7}), 7u);
    EXPECT_EQ(vm.execute(bar_id, {1000, 24}), 2024u);
}

TEST(VmSmoke, InvokeChain)
{
    Device d;

    dalvik::MethodBuilder bar("bar", 8, 2);
    bar.const4(3, 2)
        .move(4, 6)
        .binop2addr(dalvik::Bc::MulInt2Addr, 3, 4)
        .move(4, 7)
        .binop2addr(dalvik::Bc::AddInt2Addr, 3, 4)
        .returnValue(3);
    auto bar_id = d.dex.addMethod(bar.finish());

    // foo(k) { return bar(k, 456) + 1; }
    dalvik::MethodBuilder foo("foo", 8, 1);
    foo.move(4, 7)                                // v4 <- k
        .const16(5, 456)
        .invokeStatic(bar_id, 2, 4)               // bar(v4, v5)
        .moveResult(0)
        .addIntLit8(0, 0, 1)
        .returnValue(0);
    auto foo_id = d.dex.addMethod(foo.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();

    EXPECT_EQ(vm.execute(foo_id, {123}), 2u * 123 + 456 + 1);
}

TEST(VmSmoke, LoopsAndBranches)
{
    Device d;

    // sum(n) { s = 0; for (i = 1; i <= n; i++) s += i; return s; }
    dalvik::MethodBuilder sum("sum", 8, 1);
    sum.const4(0, 0)                              // s
        .const4(1, 1)                             // i
        .label("loop")
        .ifGt(1, 7, "done")
        .binop2addr(dalvik::Bc::AddInt2Addr, 0, 1)
        .addIntLit8(1, 1, 1)
        .gotoLabel("loop")
        .label("done")
        .returnValue(0);
    auto id = d.dex.addMethod(sum.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();

    EXPECT_EQ(vm.execute(id, {10}), 55u);
    EXPECT_EQ(vm.execute(id, {0}), 0u);
    EXPECT_EQ(vm.execute(id, {100}), 5050u);
}

TEST(VmSmoke, StringConcatProducesCorrectChars)
{
    Device d;

    uint16_t s1 = d.dex.addString("type=sms");
    uint16_t s2 = d.dex.addString("&imei=");

    // msg = "type=sms".concat("&imei=")
    dalvik::MethodBuilder m("concat_test", 8, 0);
    m.constString(4, s1)
        .constString(5, s2)
        .invokeStatic(d.lib.string_concat, 2, 4)
        .moveResultObject(0)
        .returnObject(0);
    auto id = d.dex.addMethod(m.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();

    runtime::Ref out = vm.execute(id);
    EXPECT_EQ(vm.readString(out), "type=sms&imei=");
}

TEST(VmSmoke, TraceContainsVregTraffic)
{
    Device d;

    dalvik::MethodBuilder m("movechain", 8, 1);
    m.move(0, 7).move(1, 0).move(2, 1).returnValue(2);
    auto id = d.dex.addMethod(m.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();
    EXPECT_EQ(vm.execute(id, {42}), 42u);

    // Every move must appear as a frame load + frame store.
    size_t frame_loads = 0, frame_stores = 0;
    for (const auto &rec : d.buffer.trace().records) {
        if (rec.mem_start >= mem::frame_base &&
            rec.mem_start <= mem::frame_limit) {
            if (rec.mem_kind == sim::MemKind::Load)
                ++frame_loads;
            if (rec.mem_kind == sim::MemKind::Store)
                ++frame_stores;
        }
    }
    EXPECT_GE(frame_loads, 4u);  // 3 moves + return
    EXPECT_GE(frame_stores, 3u);
}

TEST(VmSmoke, ExceptionsUnwindToCatch)
{
    Device d;

    // try { throw e; } catch (e) { return 7; }
    dalvik::MethodBuilder m("thrower", 8, 0);
    m.newInstance(0, d.lib.exception_cls)
        .throwVreg(0)
        .const4(1, 0)
        .returnValue(1)        // skipped
        .catchHere()
        .moveException(2)
        .const4(1, 7)
        .returnValue(1);
    auto id = d.dex.addMethod(m.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();
    EXPECT_EQ(vm.execute(id), 7u);
    EXPECT_FALSE(vm.uncaughtException());
}

TEST(VmSmoke, AbiDivisionViaHelper)
{
    Device d;

    dalvik::MethodBuilder m("divide", 8, 2);
    m.binop(dalvik::Bc::DivInt, 0, 6, 7).returnValue(0);
    auto id = d.dex.addMethod(m.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();
    EXPECT_EQ(vm.execute(id, {100, 7}), 14u);
    EXPECT_EQ(vm.execute(id, {100, 0}), 0u); // div-by-zero -> 0
}

TEST(VmSmoke, IntegerToStringContent)
{
    Device d;

    dalvik::MethodBuilder m("i2s", 8, 1);
    m.move(4, 7)
        .invokeStatic(d.lib.int_to_string, 1, 4)
        .moveResultObject(0)
        .returnObject(0);
    auto id = d.dex.addMethod(m.finish());

    dalvik::Vm vm(d.cpu, d.dex, d.heap);
    vm.boot();
    EXPECT_EQ(vm.readString(vm.execute(id, {12345})), "12345");
    EXPECT_EQ(vm.readString(vm.execute(id, {7})), "7");
    EXPECT_EQ(vm.readString(vm.execute(id,
        {static_cast<uint32_t>(-42)})), "-42");
}
