#!/usr/bin/env python3
"""Stdlib-only JSON Schema checking shared by the bench validators.

Implements the subset of JSON Schema draft-07 the checked-in schemas
use (type, enum, anyOf, required, properties, items, minimum,
minLength, pattern), so CI needs no third-party jsonschema package.

Each validator (validate_telemetry.py, validate_parallel.py,
validate_recovery.py) layers its own semantic checks on top and calls
run_validator() with them.
"""

import json
import re
import sys


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    raise ValueError(f"unsupported schema type {expected!r}")


def validate(value, schema, path, errors):
    if "anyOf" in schema:
        for sub in schema["anyOf"]:
            probe = []
            validate(value, sub, path, probe)
            if not probe:
                break
        else:
            errors.append(f"{path}: matches no anyOf branch")
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return

    expected = schema.get("type")
    if expected and not type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__}")
        return

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)
    elif isinstance(value, str):
        if len(value) < schema.get("minLength", 0):
            errors.append(f"{path}: shorter than minLength")
        pattern = schema.get("pattern")
        if pattern and not re.search(pattern, value):
            errors.append(f"{path}: {value!r} does not match "
                          f"{pattern!r}")
    if (isinstance(value, (int, float)) and not isinstance(value, bool)
            and "minimum" in schema and value < schema["minimum"]):
        errors.append(f"{path}: {value} below minimum "
                      f"{schema['minimum']}")


def run_validator(argv, default_schema, semantic_checks, summarize,
                  usage):
    """Shared main(): load report + schema, validate both layers.

    @param semantic_checks callable(report, errors) for the checks a
           type system cannot express
    @param summarize callable(report) -> str appended to the OK line
    @param usage one-line usage string for bad invocations
    """
    if len(argv) not in (2, 3):
        print(usage, file=sys.stderr)
        return 2
    report_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else default_schema

    with open(report_path) as f:
        report = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    validate(report, schema, "$", errors)
    semantic_checks(report, errors)

    if errors:
        for err in errors:
            print(f"FAIL {report_path}: {err}", file=sys.stderr)
        return 1
    print(f"OK {report_path}: schema-valid, {summarize(report)}")
    return 0
