#!/usr/bin/env python3
"""Validate a parallel-scaling bench report against its JSON schema.

Usage: validate_parallel.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
here are the ones a type system cannot express:

 - `deterministic` must be true: every pool width reproduced the
   serial Figure 11 grid exactly (byte-identical results are the
   exec pool's core contract);
 - runs cover widths 1/2/4/8 in ascending order, the first at
   jobs=1 with speedup 1.0;
 - replays_per_run == grid_cells * apps;
 - each run's efficiency equals speedup / jobs (1% tolerance);
 - when the machine actually has >= 4 hardware jobs, the jobs=4 run
   must show >= 2x speedup over the serial run. On smaller machines
   (CI containers pinned to 1-2 CPUs) the scaling claim is
   unfalsifiable and only the structural checks apply.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    if report.get("deterministic") is not True:
        errors.append("deterministic: parallel grids diverged from "
                      "the serial grid")

    cells = report.get("grid_cells", 0)
    apps = report.get("apps", 0)
    if report.get("replays_per_run") != cells * apps:
        errors.append(f"replays_per_run: expected grid_cells * apps "
                      f"= {cells * apps}, got "
                      f"{report.get('replays_per_run')}")

    runs = report.get("runs", [])
    widths = [r.get("jobs") for r in runs if isinstance(r, dict)]
    if widths != [1, 2, 4, 8]:
        errors.append(f"runs: expected widths [1, 2, 4, 8], "
                      f"got {widths}")
        return
    if runs[0].get("speedup") != 1.0:
        errors.append("runs[0]: serial run must have speedup 1.0")

    for i, run in enumerate(runs):
        jobs = run.get("jobs", 1)
        speedup = run.get("speedup", 0.0)
        eff = run.get("efficiency", 0.0)
        if abs(eff - speedup / jobs) > 0.01 * max(eff, 1e-9):
            errors.append(f"runs[{i}]: efficiency {eff} != "
                          f"speedup/jobs {speedup / jobs}")

    hardware = report.get("hardware_jobs", 1)
    if hardware >= 4:
        speedup4 = runs[2].get("speedup", 0.0)
        if speedup4 < 2.0:
            errors.append(f"runs[jobs=4]: speedup {speedup4} < 2.0 "
                          f"with {hardware} hardware jobs available")


def summarize(report):
    runs = report.get("runs", [])
    best = max((r.get("speedup", 0.0) for r in runs), default=0.0)
    return (f"{len(runs)} widths, "
            f"hardware_jobs={report.get('hardware_jobs')}, "
            f"best speedup {best:.2f}x")


def main(argv):
    return run_validator(
        argv, "schemas/bench_parallel.schema.json", semantic_checks,
        summarize,
        "Usage: validate_parallel.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
