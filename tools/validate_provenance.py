#!/usr/bin/env python3
"""Validate a provenance flight-recorder bench report.

Usage: validate_provenance.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
are the attribution contract the differential proves — deterministic,
so CI gates on them hard:

 - differential.ok and every fault_sweep row ok;
 - tainted == complete_chains: every Tainted verdict resolved to a
   complete source→sink chain;
 - maybe == cited_causes: every MaybeTainted cited a concrete
   degradation cause;
 - clean_with_chain == 0: no Clean verdict carried residual taint;
 - per fault class, cited == maybe == cause_matches: every cause
   matched the injected fault family;
 - ring_sweep capacities strictly ascending, with the largest ring
   satisfying the contract at zero evictions.

All of the above are vacuous when compiled_in is false (the
PIFT_PROVENANCE=OFF leg still emits a valid artifact). Overhead
fields (recorder_on/off_ms, overhead_pct) are informational:
wall-clock gates are flaky on shared CI runners, so the JSON carries
the numbers and humans watch the trajectory.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    compiled_in = report.get("compiled_in", False)
    diff = report.get("differential", {})

    if compiled_in:
        if not diff.get("ok", False):
            errors.append("differential.ok is false (attribution "
                          "contract violated for some app)")
        tainted = diff.get("tainted", 0)
        complete = diff.get("complete_chains", -1)
        if tainted != complete:
            errors.append(f"differential: tainted {tainted} != "
                          f"complete_chains {complete} (a Tainted "
                          f"verdict has no complete chain)")
        maybe = diff.get("maybe", 0)
        cited = diff.get("cited_causes", -1)
        if maybe != cited:
            errors.append(f"differential: maybe {maybe} != "
                          f"cited_causes {cited} (a MaybeTainted "
                          f"verdict has no concrete cause)")
        if diff.get("clean_with_chain", -1) != 0:
            errors.append(f"differential.clean_with_chain: "
                          f"{diff.get('clean_with_chain')} != 0 (a "
                          f"Clean verdict carried residual taint)")
        if diff.get("sinks", 0) != diff.get("explained", -1):
            errors.append(f"differential: explained "
                          f"{diff.get('explained')} != sinks "
                          f"{diff.get('sinks')} (a sink check left "
                          f"no explanation)")
        for row in report.get("fault_sweep", []):
            name = row.get("fault_class", "?")
            if not row.get("ok", False):
                errors.append(f"fault_sweep[{name}].ok is false")
            if row.get("cited") != row.get("maybe") or \
                    row.get("cause_matches") != row.get("maybe"):
                errors.append(
                    f"fault_sweep[{name}]: maybe "
                    f"{row.get('maybe')} cited {row.get('cited')} "
                    f"matched {row.get('cause_matches')} (cause "
                    f"did not match the injected class)")
    else:
        # Compiled-out leg: the differential must be vacuous, not
        # half-populated.
        if diff.get("records", 0) != 0:
            errors.append(f"compiled_in false but differential "
                          f"recorded {diff.get('records')} records")

    caps = [r.get("capacity", 0) for r in report.get("ring_sweep", [])
            if isinstance(r, dict)]
    if caps != sorted(caps) or len(set(caps)) != len(caps):
        errors.append(f"ring_sweep: capacities not strictly "
                      f"ascending: {caps}")
    if compiled_in and report.get("ring_sweep"):
        top = report["ring_sweep"][-1]
        if not top.get("contract", False):
            errors.append(f"ring_sweep: largest ring "
                          f"{top.get('capacity')} still violates "
                          f"the contract")
        if top.get("evicted", -1) != 0:
            errors.append(f"ring_sweep: largest ring "
                          f"{top.get('capacity')} still evicted "
                          f"{top.get('evicted')} records")

    over = report.get("overhead", {})
    if over.get("measured", False) and over.get("reps", 0) < 1:
        errors.append("overhead.measured true but reps < 1")


def summarize(report):
    diff = report.get("differential", {})
    over = report.get("overhead", {})
    pct = (f"{over.get('overhead_pct')}%" if over.get("measured")
           else "not measured")
    return (f"{diff.get('apps')} apps: {diff.get('tainted')} tainted "
            f"({diff.get('complete_chains')} complete), "
            f"{diff.get('maybe')} maybe "
            f"({diff.get('cited_causes')} cited), "
            f"{diff.get('clean')} clean; overhead {pct}")


def main(argv):
    return run_validator(
        argv, "schemas/bench_provenance.schema.json",
        semantic_checks, summarize,
        "Usage: validate_provenance.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
