#!/usr/bin/env python3
"""Validate a durable-state recovery bench report against its schema.

Usage: validate_recovery.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
are the durability invariants the crash differential proves — they
are deterministic, so CI gates on them hard:

 - silent_fn == 0: no crash point ever turned a golden Tainted
   verdict into a silent Clean;
 - false_positives == 0: no crash point invented a Tainted verdict;
 - exact + detected == points: every crash point landed in one of
   the two permitted outcomes (no third bucket);
 - wal_bytes == header + frames * journal_records: the WAL is
   exactly the length-prefixed framing it claims (no slack, no
   truncation in the uncrashed artifact);
 - recovery rows are sorted by surviving WAL length (the bench cuts
   at increasing fractions).

Timing fields (journal overhead, snapshot write/load, recovery ms)
are informational: wall-clock gates are flaky on shared CI runners,
so the JSON carries the numbers and humans watch the trajectory.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    sweep = report.get("crash_sweep", {})
    if sweep.get("silent_fn", -1) != 0:
        errors.append(f"crash_sweep.silent_fn: "
                      f"{sweep.get('silent_fn')} != 0 (a crash "
                      f"point silently lost a Tainted verdict)")
    if sweep.get("false_positives", -1) != 0:
        errors.append(f"crash_sweep.false_positives: "
                      f"{sweep.get('false_positives')} != 0")
    points = sweep.get("points", 0)
    exact = sweep.get("exact", 0)
    detected = sweep.get("detected", 0)
    if exact + detected != points:
        errors.append(f"crash_sweep: exact {exact} + detected "
                      f"{detected} != points {points} (unclassified "
                      f"crash outcomes)")

    header = report.get("wal_header_bytes", 0)
    frame = report.get("wal_frame_bytes", 0)
    nrec = report.get("journal_records", 0)
    expect = header + frame * nrec
    if report.get("wal_bytes") != expect:
        errors.append(f"wal_bytes: expected header + frames = "
                      f"{expect}, got {report.get('wal_bytes')}")

    rows = report.get("recovery", [])
    lengths = [r.get("wal_records", 0) for r in rows
               if isinstance(r, dict)]
    if lengths != sorted(lengths):
        errors.append(f"recovery: wal_records not ascending: "
                      f"{lengths}")


def summarize(report):
    sweep = report.get("crash_sweep", {})
    return (f"{sweep.get('points')} crash points "
            f"({sweep.get('exact')} exact, "
            f"{sweep.get('detected')} detected), "
            f"journal_overhead_pct="
            f"{report.get('journal_overhead_pct')}")


def main(argv):
    return run_validator(
        argv, "schemas/bench_recovery.schema.json", semantic_checks,
        summarize,
        "Usage: validate_recovery.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
