#!/usr/bin/env python3
"""Validate a multi-tenant service bench report against its schema.

Usage: validate_service.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
here are the ones a type system cannot express:

 - `differential.identical` must be true with zero mismatches: every
   registry app multiplexed through the service reproduced its serial
   per-app replay verdict-for-verdict at zero faults;
 - `deterministic` must be true: pump widths 1 and 4 produced
   identical verdict streams (CI additionally cmp's whole reports);
 - scaling rows cover 1/16/256/4096 sessions in ascending order with
   zero overflow (the paced feed must never hit backpressure) and
   accepted == events;
 - the pressure phase evicted at least one session and ended at or
   under the byte ceiling with FP = 0 and no silent FN — evicted
   tenants answer MaybeTainted, never a bare Clean;
 - the backpressure phase actually overflowed, surfaced the loss as
   MaybeTainted, and (when provenance is compiled in) cited a
   StreamLoss record for it;
 - `gates_passed` must be true.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    diff = report.get("differential", {})
    if diff.get("identical") is not True or diff.get("mismatches", 1):
        errors.append("differential: multiplexed verdicts diverged "
                      "from serial per-app replay")

    if report.get("deterministic") is not True:
        errors.append("deterministic: verdict streams differ across "
                      "pump widths")

    runs = report.get("scaling", [])
    sessions = [r.get("sessions") for r in runs if isinstance(r, dict)]
    if sessions != [1, 16, 256, 4096]:
        errors.append(f"scaling: expected sessions [1, 16, 256, 4096],"
                      f" got {sessions}")
        return
    for i, run in enumerate(runs):
        if run.get("overflowed", 0) != 0:
            errors.append(f"scaling[{i}]: paced feed overflowed "
                          f"{run.get('overflowed')} events")
        if run.get("accepted") != run.get("events"):
            errors.append(f"scaling[{i}]: accepted "
                          f"{run.get('accepted')} != events "
                          f"{run.get('events')}")
        if run.get("sink_checks", 0) < 1:
            errors.append(f"scaling[{i}]: no sink checks probed")

    pressure = report.get("pressure", {})
    if pressure.get("evicted", 0) < 1:
        errors.append("pressure: ceiling never engaged eviction")
    if pressure.get("final_bytes", 0) > pressure.get(
            "ceiling_bytes", 0):
        errors.append(f"pressure: final_bytes "
                      f"{pressure.get('final_bytes')} above ceiling "
                      f"{pressure.get('ceiling_bytes')}")
    if pressure.get("fp", 1) != 0:
        errors.append(f"pressure: {pressure.get('fp')} false "
                      f"positives (FP=0 is the paper's invariant)")
    if pressure.get("silent_fn", 1) != 0:
        errors.append(f"pressure: {pressure.get('silent_fn')} leaky "
                      f"tenants answered bare Clean after eviction")
    if pressure.get("ok") is not True:
        errors.append("pressure: gate reported failure")

    bp = report.get("backpressure", {})
    if bp.get("overflowed", 0) < 1:
        errors.append("backpressure: tiny queue never overflowed")
    if bp.get("surfaced_maybe") is not True:
        errors.append("backpressure: refused events were not "
                      "surfaced as MaybeTainted")
    if bp.get("provenance_cited") is not True:
        errors.append("backpressure: no StreamLoss provenance record "
                      "behind the MaybeTainted verdict")
    if bp.get("ok") is not True:
        errors.append("backpressure: gate reported failure")

    if report.get("gates_passed") is not True:
        errors.append("gates_passed: bench reported gate failure")


def summarize(report):
    runs = report.get("scaling", [])
    peak = max((r.get("events_per_sec", 0.0) for r in runs),
               default=0.0)
    pressure = report.get("pressure", {})
    return (f"{len(runs)} session counts, peak "
            f"{peak:.0f} events/sec, "
            f"evicted={pressure.get('evicted')}, "
            f"deterministic={report.get('deterministic')}")


def main(argv):
    return run_validator(
        argv, "schemas/bench_service.schema.json", semantic_checks,
        summarize,
        "Usage: validate_service.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
