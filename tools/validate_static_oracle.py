#!/usr/bin/env python3
"""Validate a static-oracle cross-check bench report against its schema.

Usage: validate_static_oracle.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
are the acceptance criteria of the implicit-flow analysis — the whole
pipeline is deterministic (no execution feeds the static side, and
the replays are exact), so CI gates on the exact counts:

 - explicit.fp == 0 and implicit.fp == 0: neither oracle mode ever
   flags a benign app (precision is the non-negotiable half);
 - explicit.fn == 2: the explicit-only mode misses exactly the two
   implicit-flow apps, no more, no fewer — the known blind spot
   implicit mode exists to close;
 - implicit.fn == 0: implicit mode closes both misses;
 - per_app implicit verdicts are a superset of the explicit ones
   (joining control taint can only add reachable sink reports);
 - malware.implicit_detected == malware.apps: all analogs flagged;
 - policy.covers_optimum and joined_{ni,nt} >= optimum_{ni,nt}: the
   joined per-app policy is at least as wide as the dynamic sweep's
   Figure 11 optimum;
 - policy.risky_apps equals the per_app rows with implicit_risk, and
   every risky row carries untaint == "keep".

Wall-clock fields are informational only: timing gates are flaky on
shared CI runners, so the JSON carries the numbers and humans watch
the trajectory.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    explicit = report.get("explicit", {})
    implicit = report.get("implicit", {})
    if explicit.get("fp", -1) != 0:
        errors.append(f"explicit.fp: {explicit.get('fp')} != 0 "
                      f"(explicit oracle flagged a benign app)")
    if explicit.get("fn", -1) != 2:
        errors.append(f"explicit.fn: {explicit.get('fn')} != 2 "
                      f"(expected exactly the two implicit-flow "
                      f"misses)")
    if implicit.get("fp", -1) != 0:
        errors.append(f"implicit.fp: {implicit.get('fp')} != 0 "
                      f"(control taint introduced a false positive)")
    if implicit.get("fn", -1) != 0:
        errors.append(f"implicit.fn: {implicit.get('fn')} != 0 "
                      f"(implicit mode left a leak undetected)")

    rows = [r for r in report.get("per_app", []) if isinstance(r, dict)]
    if len(rows) != report.get("apps"):
        errors.append(f"per_app: {len(rows)} rows != apps "
                      f"{report.get('apps')}")
    for row in rows:
        if row.get("explicit") and not row.get("implicit"):
            errors.append(f"per_app[{row.get('name')}]: explicit "
                          f"leak not reported by implicit mode "
                          f"(implicit must be a superset)")
        if row.get("implicit_risk") and row.get("untaint") != "keep":
            errors.append(f"per_app[{row.get('name')}]: implicit "
                          f"risk without untaint=keep")

    malware = report.get("malware", {})
    if malware.get("implicit_detected") != malware.get("apps"):
        errors.append(f"malware: implicit_detected "
                      f"{malware.get('implicit_detected')} != apps "
                      f"{malware.get('apps')}")

    policy = report.get("policy", {})
    if not policy.get("covers_optimum"):
        errors.append("policy.covers_optimum: false (joined static "
                      "policy narrower than the dynamic optimum)")
    if (policy.get("joined_ni", 0) < policy.get("optimum_ni", 0)
            or policy.get("joined_nt", 0) < policy.get("optimum_nt",
                                                       0)):
        errors.append(f"policy: joined ({policy.get('joined_ni')}, "
                      f"{policy.get('joined_nt')}) narrower than "
                      f"optimum ({policy.get('optimum_ni')}, "
                      f"{policy.get('optimum_nt')})")
    risky_rows = sum(1 for r in rows if r.get("implicit_risk"))
    if policy.get("risky_apps") != risky_rows:
        errors.append(f"policy.risky_apps: "
                      f"{policy.get('risky_apps')} != {risky_rows} "
                      f"per_app rows with implicit_risk")


def summarize(report):
    explicit = report.get("explicit", {})
    implicit = report.get("implicit", {})
    policy = report.get("policy", {})
    return (f"{report.get('apps')} apps, explicit "
            f"fn={explicit.get('fn')}, implicit "
            f"fn={implicit.get('fn')} fp={implicit.get('fp')}, "
            f"joined policy ({policy.get('joined_ni')}, "
            f"{policy.get('joined_nt')}) covers optimum "
            f"({policy.get('optimum_ni')}, "
            f"{policy.get('optimum_nt')})")


def main(argv):
    return run_validator(
        argv, "schemas/bench_static_oracle.schema.json",
        semantic_checks, summarize,
        "Usage: validate_static_oracle.py <report.json> "
        "[schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
