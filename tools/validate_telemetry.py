#!/usr/bin/env python3
"""Validate a telemetry bench report against its JSON schema.

Usage: validate_telemetry.py <report.json> [schema.json]

Schema checking (a stdlib-only draft-07 subset) lives in
schema_check.py, shared with the other bench validators. This layer
adds the semantic checks a type system cannot express: instrument
names must be unique and sorted (snapshot determinism), and histogram
bucket counts must sum to the histogram count.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402


def semantic_checks(report, errors):
    instruments = report.get("instruments", [])
    names = [i.get("name") for i in instruments
             if isinstance(i, dict)]
    if len(names) != len(set(names)):
        errors.append("instruments: duplicate names")
    if names != sorted(names):
        errors.append("instruments: not sorted by name "
                      "(snapshot determinism broken)")
    for inst in instruments:
        if not isinstance(inst, dict):
            continue
        if inst.get("kind") == "histogram":
            buckets = inst.get("buckets", [])
            total = sum(b.get("count", 0) for b in buckets
                        if isinstance(b, dict))
            if total != inst.get("count", 0):
                errors.append(f"instruments[{inst.get('name')}]: "
                              f"bucket counts sum to {total}, "
                              f"count says {inst.get('count')}")


def summarize(report):
    ninstr = len(report.get("instruments", []))
    return (f"{ninstr} instruments, "
            f"overhead_pct={report.get('overhead_pct')}")


def main(argv):
    return run_validator(
        argv, "schemas/bench_telemetry.schema.json", semantic_checks,
        summarize,
        "Usage: validate_telemetry.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
