#!/usr/bin/env python3
"""Validate a telemetry bench report against its JSON schema.

Usage: validate_telemetry.py <report.json> [schema.json]

Implements the subset of JSON Schema draft-07 the checked-in schema
uses (type, enum, anyOf, required, properties, items, minimum,
minLength, pattern) with the standard library only, so CI needs no
third-party jsonschema package.

Beyond the schema, a few semantic checks that a type system cannot
express: instrument names must be unique and sorted (snapshot
determinism), and histogram bucket counts must sum to the histogram
count.
"""

import json
import re
import sys


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    raise ValueError(f"unsupported schema type {expected!r}")


def validate(value, schema, path, errors):
    if "anyOf" in schema:
        for sub in schema["anyOf"]:
            probe = []
            validate(value, sub, path, probe)
            if not probe:
                break
        else:
            errors.append(f"{path}: matches no anyOf branch")
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return

    expected = schema.get("type")
    if expected and not type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__}")
        return

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)
    elif isinstance(value, str):
        if len(value) < schema.get("minLength", 0):
            errors.append(f"{path}: shorter than minLength")
        pattern = schema.get("pattern")
        if pattern and not re.search(pattern, value):
            errors.append(f"{path}: {value!r} does not match "
                          f"{pattern!r}")
    if (isinstance(value, (int, float)) and not isinstance(value, bool)
            and "minimum" in schema and value < schema["minimum"]):
        errors.append(f"{path}: {value} below minimum "
                      f"{schema['minimum']}")


def semantic_checks(report, errors):
    instruments = report.get("instruments", [])
    names = [i.get("name") for i in instruments
             if isinstance(i, dict)]
    if len(names) != len(set(names)):
        errors.append("instruments: duplicate names")
    if names != sorted(names):
        errors.append("instruments: not sorted by name "
                      "(snapshot determinism broken)")
    for inst in instruments:
        if not isinstance(inst, dict):
            continue
        if inst.get("kind") == "histogram":
            buckets = inst.get("buckets", [])
            total = sum(b.get("count", 0) for b in buckets
                        if isinstance(b, dict))
            if total != inst.get("count", 0):
                errors.append(f"instruments[{inst.get('name')}]: "
                              f"bucket counts sum to {total}, "
                              f"count says {inst.get('count')}")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    report_path = argv[1]
    schema_path = (argv[2] if len(argv) == 3
                   else "schemas/bench_telemetry.schema.json")

    with open(report_path) as f:
        report = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    validate(report, schema, "$", errors)
    semantic_checks(report, errors)

    if errors:
        for err in errors:
            print(f"FAIL {report_path}: {err}", file=sys.stderr)
        return 1
    ninstr = len(report.get("instruments", []))
    print(f"OK {report_path}: schema-valid, {ninstr} instruments, "
          f"overhead_pct={report.get('overhead_pct')}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
