#!/usr/bin/env python3
"""Validate a throughput bench report against its JSON schema.

Usage: validate_throughput.py <report.json> [schema.json]

Schema checking lives in schema_check.py (stdlib-only draft-07
subset, shared with the other bench validators). The semantic checks
here are the ones a type system cannot express, and deliberately gate
only machine-independent facts — absolute events/sec depends on the
CI box and is recorded, not judged:

 - `verdicts_identical` must be true: the batched SoA pipeline must
   report exactly the per-event leak verdicts on every registry app
   (correctness contract of the whole optimisation);
 - the seven expected sections are all present, each with nonzero
   wall time;
 - `replay_batched_vs_per_event` must be >= 1.0: batching is allowed
   to be a wash on a bad scheduler day, never a regression;
 - the reported speedups must equal the section events/sec ratios
   (1% tolerance), so a hand-edited report cannot pass.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from schema_check import run_validator  # noqa: E402

EXPECTED_SECTIONS = [
    "replay_per_event",
    "replay_batched",
    "capture_baseline",
    "capture_decode",
    "capture_fast",
    "lookup_range_set",
    "lookup_storage_probe",
]

SPEEDUP_RATIOS = {
    "replay_batched_vs_per_event": ("replay_batched",
                                    "replay_per_event"),
    "capture_decode_vs_baseline": ("capture_decode",
                                   "capture_baseline"),
    "capture_fast_vs_baseline": ("capture_fast", "capture_baseline"),
}


def semantic_checks(report, errors):
    if report.get("verdicts_identical") is not True:
        errors.append("verdicts_identical: batched replay diverged "
                      "from per-event verdicts")

    sections = {s.get("name"): s for s in report.get("sections", [])
                if isinstance(s, dict)}
    names = [s.get("name") for s in report.get("sections", [])
             if isinstance(s, dict)]
    if names != EXPECTED_SECTIONS:
        errors.append(f"sections: expected {EXPECTED_SECTIONS}, "
                      f"got {names}")
        return
    for name, s in sections.items():
        if s.get("wall_ms", 0.0) <= 0.0:
            errors.append(f"sections[{name}]: wall_ms must be > 0")

    speedups = report.get("speedups", {})
    for key, (num, den) in SPEEDUP_RATIOS.items():
        den_rate = sections[den].get("events_per_sec", 0.0)
        num_rate = sections[num].get("events_per_sec", 0.0)
        if den_rate <= 0.0:
            errors.append(f"sections[{den}]: zero events_per_sec")
            continue
        expected = num_rate / den_rate
        got = speedups.get(key, 0.0)
        if abs(got - expected) > 0.01 * max(expected, 1e-9):
            errors.append(f"speedups.{key}: {got} != section ratio "
                          f"{expected}")

    batched = speedups.get("replay_batched_vs_per_event", 0.0)
    if batched < 1.0:
        errors.append(f"speedups.replay_batched_vs_per_event: "
                      f"{batched} < 1.0 — batched replay regressed "
                      f"below the per-event pipeline")


def summarize(report):
    speedups = report.get("speedups", {})
    batched = speedups.get("replay_batched_vs_per_event", 0.0)
    sections = {s.get("name"): s for s in report.get("sections", [])
                if isinstance(s, dict)}
    rate = sections.get("replay_batched", {}).get("events_per_sec", 0)
    return (f"{len(sections)} sections, batched replay "
            f"{batched:.2f}x at {rate:,.0f} events/sec")


def main(argv):
    return run_validator(
        argv, "schemas/bench_throughput.schema.json", semantic_checks,
        summarize,
        "Usage: validate_throughput.py <report.json> [schema.json]")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
